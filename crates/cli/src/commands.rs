//! `libractl` command implementations.

use crate::args::{ArgError, Args, CommonOpts, EngineOpts, ModelRef};
use libra::prelude::*;
use libra::sim::run_policy_segment;
use libra::{
    run_multisim, DelayDist, DelayModel, LinkState, MultiSimConfig, PolicyKind, ScenarioType,
    SegmentData, SimConfig, TimelineConfig,
};
use libra_dataset::{Features, GroundTruthParams, Instruments};
use libra_guard::{run_chaos, ChaosConfig, LifecycleAction};
use libra_infer::{ModelArtifact, ModelRegistry, ModelSpec, RegistryWatcher};
use libra_mac::{BaOverheadPreset, ProtocolParams};
use libra_obs as obs;
use libra_phy::McsTable;
use libra_serve::{DecisionService, LoadConfig, ServeConfig, ServedModel};
use libra_util::par::{par_map, par_map_index};
use libra_util::rng::rng_from_seed;
use libra_util::table::{fmt_f, TextTable};

/// The shared flags of [`CommonOpts`], resolved once per invocation:
/// worker count applied, telemetry switched, model registry opened.
/// Subcommands receive this instead of re-reading the flags themselves.
struct CommandContext {
    registry: ModelRegistry,
}

/// The single resolution point for the shared flags.
fn resolve(common: &CommonOpts) -> CommandContext {
    if common.threads > 0 {
        libra_util::par::set_threads(common.threads);
    }
    if common.trace {
        obs::set_enabled(true);
    }
    let registry = match &common.models_dir {
        Some(dir) => ModelRegistry::open(dir),
        None => ModelRegistry::open_default(),
    };
    CommandContext { registry }
}

/// Runs a parsed command line; returns the text to print.
///
/// The shared flags (`--threads`, `--trace`, `--models-dir`) are
/// consumed and resolved here, before dispatch, so every subcommand
/// accepts them uniformly. With `--trace`, the telemetry observed
/// during the command is drained afterwards and written to
/// `trace.jsonl` + `obs_summary.txt` under the results root.
pub fn run(mut args: Args) -> Result<String, ArgError> {
    let common = CommonOpts::take(&mut args)?;
    let ctx = resolve(&common);
    let result = dispatch(&mut args, &ctx);
    if common.trace {
        obs::set_enabled(false);
        let report = obs::take_root_report();
        let emitted = obs::write_trace_files(&report, &libra_util::paths::results_root());
        return result.map(|mut out| {
            match emitted {
                Ok((jsonl, summary)) => out.push_str(&format!(
                    "trace: wrote {} and {}\n",
                    jsonl.display(),
                    summary.display()
                )),
                Err(e) => out.push_str(&format!("warning: could not write trace files: {e}\n")),
            }
            out
        });
    }
    result
}

fn dispatch(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let path: Vec<&str> = args.positionals().iter().map(String::as_str).collect();
    match path.as_slice() {
        ["dataset", "generate"] => dataset_generate(args),
        ["dataset", "summary"] => dataset_summary(args),
        ["train"] => train(args, ctx),
        ["classify"] => classify(args, ctx),
        ["predict"] => predict(args, ctx),
        ["models", "list"] => models_list(args, ctx),
        ["models", "inspect"] => models_inspect(args, ctx),
        ["simulate"] => simulate(args, ctx),
        ["timeline"] => timeline(args, ctx),
        ["multisim"] => multisim(args, ctx),
        ["serve"] => serve(args, ctx),
        ["loadgen"] => loadgen(args, ctx),
        ["fuzz", "run"] => fuzz_run(args, ctx),
        ["fuzz", "replay"] => fuzz_replay(args, ctx),
        ["fuzz", "minimize"] => fuzz_minimize(args, ctx),
        ["fuzz", "export"] => fuzz_export(args),
        ["fuzz", "traincheck"] => fuzz_traincheck(args, ctx),
        ["chaos"] => chaos(args),
        ["info"] => info(args),
        [] => Ok(usage()),
        other => Err(ArgError(format!(
            "unknown command `{}`\n\n{}",
            other.join(" "),
            usage()
        ))),
    }
}

/// The help text.
pub fn usage() -> String {
    "libractl — LiBRA 60 GHz link adaptation tools

USAGE:
  libractl dataset generate --plan main|testing --out FILE [--csv FILE] [--seed N] [--repeats N]
  libractl dataset summary  --input FILE [--alpha A] [--ba-ms MS] [--fat-ms MS]
  libractl train            --dataset FILE [--out FILE] [--save NAME] [--seed N]
  libractl models list
  libractl models inspect   --model MODEL
  libractl classify         --model MODEL --snr-diff DB [--tof-diff NS] [--noise-diff DB]
                            [--pdp-sim S] [--csi-sim S] [--cdr C] [--initial-mcs M]
  libractl predict          --model MODEL [feature flags as for classify]
                            [--engine recursive|flat|blocked] [--quantized]
  libractl simulate         --model MODEL --dataset FILE [--ba-ms MS] [--fat-ms MS] [--flow-ms MS]
  libractl timeline         --model MODEL [--scenario mobility|blockage|interference|mixed]
                            [--timelines N] [--ba-ms MS] [--fat-ms MS] [--seed N]
  libractl multisim         [--aps N] [--stations N] [--duration-ms MS] [--seed N]
                            [--policy libra|ra-first|ba-first|oracle-data|oracle-delay]
                            [--decision-delay-ms MS | --delay-from-trace FILE]
                            [--roam-interval-ms MS]
                            [--ba-ms MS] [--fat-ms MS] [--model MODEL]
  libractl loadgen          --model MODEL [--requests N] [--stations N] [--seed N] [--shards N]
                            [--batch N] [--record FILE | --no-record] [--watch]
                            [--publish MODEL --publish-after N]
  libractl serve            --model MODEL --requests FILE [--shards N] [--batch N]
                            [--engine recursive|flat|blocked] [--quantized]
  libractl fuzz run         [--budget N] [--seed N] [--batch N] [--keep-regret R] [--max-corpus N]
                            [--ba-ms MS] [--fat-ms MS] [--flow-ms MS] [--corpus DIR] [--model MODEL]
  libractl fuzz replay      [--corpus DIR] [--tolerance R] [--model MODEL]
  libractl fuzz minimize    --scenario NAME [--corpus DIR] [--out FILE] [--model MODEL]
  libractl fuzz export      --into FILE [--top N] [--corpus DIR]
  libractl fuzz traincheck  [--top N] [--tolerance R] [--train-seed N] [--corpus DIR] [--model MODEL]
  libractl chaos            [--seed N] [--requests N] [--stations N] [--shards N] [--registry-dir DIR]
  libractl info

Every command additionally accepts the shared flags:
  --threads N       worker threads for parallel sections (else the
                    LIBRA_THREADS environment variable, else all cores);
                    output is identical at any thread count
  --trace           collect telemetry during the command and write
                    trace.jsonl + obs_summary.txt under the results root
  --models-dir DIR  model-registry root (default results/models/, or the
                    LIBRA_MODELS_DIR environment variable)

MODEL is either a file path or a registry reference `name[@version]`
resolved against the model registry. `train --save NAME` freezes the
trained model into the registry as a checksummed artifact and repoints
NAME's latest-pointer.

The fuzz commands search scenario space for cases where LiBRA's
decisions lose throughput vs Oracle-Data, persist the hard cases under
the corpus directory (default results/corpus/, or the LIBRA_CORPUS_DIR
environment variable), and replay them as a regression suite. Without
--model they score the shared reduced-campaign classifier, so runs are
reproducible from the seed alone. `fuzz export` folds the worst-regret
corpus scenarios into a campaign dataset for retraining, and
`fuzz traincheck` measures the regret that retraining actually closes:
export the top hard cases into the reduced training campaign, retrain
from --train-seed, and rescore every corpus entry before/after
(entries beyond --top stay held out to measure generalization).

`chaos` runs the deterministic guarded-lifecycle drill of libra-guard:
a private registry is seeded with two model versions, rounds of
requests are served under a seeded fault plan (artifact corruption,
latency spikes, deadline misses, drops, shard stalls), degraded
decisions fall back to the §7 rule, and the lifecycle controller rolls
LATEST back on a degradation breach, then shadow-evaluates and promotes
a candidate once the storm clears. The `digest 0x…` line is
bitwise-identical at any --shards/--threads count. `multisim
--delay-from-trace trace.jsonl` closes the loop the other way: the
measured `serve.decision_ns` histogram from a traced serve/loadgen run
becomes the per-decision delay distribution of the simulator.

`multisim` runs the event-driven multi-station simulator: N APs sharing
a TDMA frame with M stations each, cross-station interference coupling
and roaming handoffs. Stations are simulated in parallel, yet the
`digest 0x…` line is bitwise-identical at any --threads count. With
--policy libra the classifier comes from --model when given, else the
shared reduced-campaign classifier is trained in-process.

`loadgen` drives the sharded decision service with a deterministic
synthetic request stream and records it (default
results/serve_requests.bin) for bitwise-identical replay; `serve`
replays a recorded stream. The response digest is identical at any
--shards, --batch and --threads count. `--watch` polls the registry
during the run and hot-swaps newly saved versions of MODEL in without
pausing; `--publish MODEL2 --publish-after N` swaps MODEL2 in after the
N-th request for a reproducible mid-run publication.
"
    .to_string()
}

fn ba_preset(ms: f64) -> Result<BaOverheadPreset, ArgError> {
    BaOverheadPreset::ALL
        .into_iter()
        .find(|p| (p.duration_ms() - ms).abs() < 1e-9)
        .ok_or_else(|| {
            ArgError("--ba-ms must be one of the evaluated presets: 0.5, 5, 150, 250".into())
        })
}

/// Resolves a [`ModelRef`] — a file path or a registry `name[@version]`
/// spec — to a verified artifact.
fn load_artifact(model: &ModelRef, registry: &ModelRegistry) -> Result<ModelArtifact, ArgError> {
    let reference = model.as_str();
    let path = std::path::Path::new(reference);
    if path.is_file() {
        return ModelArtifact::read(path).map_err(|e| ArgError(e.to_string()));
    }
    let spec = ModelSpec::parse(reference)
        .map_err(|e| ArgError(format!("--model {reference}: not a file, and {e}")))?;
    let (_, artifact) = registry.load(&spec).map_err(|e| ArgError(e.to_string()))?;
    Ok(artifact)
}

/// Loads a classifier from a [`ModelRef`]. File paths accept both the
/// checksummed artifact format and the legacy raw `train --out` format;
/// registry references are always artifacts.
fn load_model(model: &ModelRef, registry: &ModelRegistry) -> Result<LibraClassifier, ArgError> {
    let path = std::path::Path::new(model.as_str());
    if path.is_file() {
        return match ModelArtifact::read(path) {
            Ok(art) => LibraClassifier::from_artifact(&art).map_err(|e| ArgError(e.to_string())),
            // Not an artifact: fall back to the legacy binary format.
            Err(libra_infer::Error::BadMagic) => {
                LibraClassifier::load(path).map_err(|e| ArgError(e.to_string()))
            }
            Err(e) => Err(ArgError(e.to_string())),
        };
    }
    let artifact = load_artifact(model, registry)?;
    LibraClassifier::from_artifact(&artifact).map_err(|e| ArgError(e.to_string()))
}

fn gt_params(args: &mut Args) -> Result<GroundTruthParams, ArgError> {
    Ok(GroundTruthParams {
        alpha: args.opt_parse("alpha", 1.0)?,
        ba_ms: args.opt_parse("ba-ms", 0.5)?,
        fat_ms: args.opt_parse("fat-ms", 10.0)?,
        ..Default::default()
    })
}

fn dataset_generate(args: &mut Args) -> Result<String, ArgError> {
    let plan_name = args.req("plan")?;
    let out = args.req("out")?;
    let csv = args.opt("csv");
    let seed: u64 = args.opt_parse("seed", 0x11B2A)?;
    let repeats: usize = args.opt_parse("repeats", 3)?;
    args.finish()?;

    let plan = match plan_name.as_str() {
        "main" => main_campaign_plan(),
        "testing" => testing_campaign_plan(),
        other => {
            return Err(ArgError(format!(
                "--plan must be main|testing, got `{other}`"
            )))
        }
    };
    let cfg = CampaignConfig {
        seed,
        repeats,
        instruments: Instruments::default(),
    };
    let ds = generate(&plan, &cfg);
    ds.save(&out).map_err(|e| ArgError(e.to_string()))?;
    let mut msg = format!(
        "wrote {} entries (+{} NA twins) to {out}\n",
        ds.entries.len(),
        ds.na_entries.len()
    );
    if let Some(csv_path) = csv {
        let table = McsTable::x60();
        let text = ds.to_csv(&table, &GroundTruthParams::default());
        std::fs::write(&csv_path, text).map_err(|e| ArgError(e.to_string()))?;
        msg.push_str(&format!("wrote labelled CSV to {csv_path}\n"));
    }
    Ok(msg)
}

fn dataset_summary(args: &mut Args) -> Result<String, ArgError> {
    let input = args.req("input")?;
    let params = gt_params(args)?;
    args.finish()?;
    let ds = CampaignDataset::load(&input).map_err(|e| ArgError(e.to_string()))?;
    let table = McsTable::x60();
    let mut t = TextTable::new(["", "Total", "BA", "RA", "Positions"]);
    for r in ds.summary(&table, &params) {
        t.row([
            r.name,
            r.total.to_string(),
            r.ba.to_string(),
            r.ra.to_string(),
            r.positions.to_string(),
        ]);
    }
    Ok(format!(
        "{input} (α = {}, BA = {} ms, FAT = {} ms)\n{}",
        params.alpha,
        params.ba_ms,
        params.fat_ms,
        t.render()
    ))
}

fn train(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let dataset = args.req("dataset")?;
    let out = args.opt("out");
    let save = args.opt("save");
    let seed: u64 = args.opt_parse("seed", 7)?;
    let registry = &ctx.registry;
    args.finish()?;
    if out.is_none() && save.is_none() {
        return Err(ArgError("train needs --out FILE and/or --save NAME".into()));
    }
    let ds = CampaignDataset::load(&dataset).map_err(|e| ArgError(e.to_string()))?;
    let table = McsTable::x60();
    let data = ds.to_ml_3class(&table, &GroundTruthParams::default());
    let mut rng = rng_from_seed(seed);
    let clf = LibraClassifier::train(&data, &mut rng);

    let mut msg = format!(
        "trained on {} rows ({} classes)\n",
        data.len(),
        data.n_classes
    );
    if let Some(out) = &out {
        clf.save(out).map_err(|e| ArgError(e.to_string()))?;
        msg.push_str(&format!("wrote model to {out}\n"));
    }
    if let Some(name) = &save {
        let notes = format!("libractl train --dataset {dataset} --seed {seed}");
        let artifact = clf.to_artifact(name, seed, data.len() as u64, &notes);
        let version = registry
            .save(name, &artifact)
            .map_err(|e| ArgError(e.to_string()))?;
        let digest = artifact.digest().map_err(|e| ArgError(e.to_string()))?;
        msg.push_str(&format!(
            "saved {name}@{version} to {} (digest {digest:016x})\n",
            registry.root().display()
        ));
    }
    let imp = clf.feature_importances();
    let mut t = TextTable::new(["feature", "Gini importance"]);
    for (name, v) in libra_dataset::FEATURE_NAMES.iter().zip(imp.iter().copied()) {
        t.row([name.to_string(), fmt_f(v, 3)]);
    }
    msg.push_str(&t.render());
    Ok(msg)
}

fn models_list(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let registry = &ctx.registry;
    args.finish()?;
    let records = registry.list().map_err(|e| ArgError(e.to_string()))?;
    if records.is_empty() {
        return Ok(format!("no models in {}\n", registry.root().display()));
    }
    let mut t = TextTable::new(["name", "versions", "latest"]);
    for r in &records {
        let versions = r
            .versions
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let latest = r
            .latest
            .map_or_else(|| "-".to_string(), |v| format!("v{v}"));
        t.row([r.name.clone(), versions, latest]);
    }
    Ok(format!("{}\n{}", registry.root().display(), t.render()))
}

fn models_inspect(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let model = ModelRef::take(args)?;
    args.finish()?;
    let artifact = load_artifact(&model, &ctx.registry)?;
    let digest = artifact.digest().map_err(|e| ArgError(e.to_string()))?;
    let meta = &artifact.meta;
    let reference = model.as_str();
    let mut out = format!(
        "{reference}: {} model, {} classes {:?}\n",
        artifact.payload.kind(),
        artifact.payload.n_classes(),
        meta.class_labels
    );
    out.push_str(&format!(
        "  features     {} ({})\n",
        artifact.payload.n_features(),
        meta.feature_names.join(", ")
    ));
    out.push_str(&format!("  nodes        {}\n", artifact.payload.n_nodes()));
    out.push_str(&format!("  train seed   {}\n", meta.train_seed));
    out.push_str(&format!("  train rows   {}\n", meta.train_rows));
    out.push_str(&format!("  digest       {digest:016x}\n"));
    if !meta.notes.is_empty() {
        out.push_str(&format!("  notes        {}\n", meta.notes));
    }
    Ok(out)
}

/// Consumes the observation-window feature flags shared by `classify`
/// and `predict`.
fn take_features(args: &mut Args) -> Result<Features, ArgError> {
    Ok(Features {
        snr_diff_db: args.opt_parse("snr-diff", 0.0)?,
        tof_diff_ns: args.opt_parse("tof-diff", 0.0)?,
        noise_diff_db: args.opt_parse("noise-diff", 0.0)?,
        pdp_similarity: args.opt_parse("pdp-sim", 1.0)?,
        csi_similarity: args.opt_parse("csi-sim", 1.0)?,
        cdr: args.opt_parse("cdr", 1.0)?,
        initial_mcs: args.opt_parse("initial-mcs", 6usize)?,
    })
}

fn classify(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let model = ModelRef::take(args)?;
    let features = take_features(args)?;
    args.finish()?;
    let clf = load_model(&model, &ctx.registry)?;
    let decision = clf.decide(&features, &DecidePolicy::model_only());
    let verdict = match decision.action {
        libra_dataset::Action3::Ba => "trigger BEAM adaptation (BA)",
        libra_dataset::Action3::Ra => "trigger RATE adaptation (RA)",
        libra_dataset::Action3::Na => "no adaptation needed (NA)",
    };
    Ok(format!("{verdict}  (confidence {:.2})\n", decision.proba))
}

fn predict(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let model = ModelRef::take(args)?;
    let eopts = EngineOpts::take(args)?;
    let features = take_features(args)?;
    args.finish()?;
    let mut clf = load_model(&model, &ctx.registry)?;
    clf.select_engine(&eopts).map_err(ArgError)?;
    let probs = clf.predict_proba_one(&features.to_row());
    let decision = clf.decide(&features, &DecidePolicy::model_only());
    let mut t = TextTable::new(["class", "vote share"]);
    for (label, p) in libra::CLASS_LABELS.iter().zip(&probs) {
        t.row([label.to_string(), fmt_f(*p, 3)]);
    }
    Ok(format!(
        "prediction: {:?}  (engine {})\n{}",
        decision.action,
        clf.engine_label(),
        t.render()
    ))
}

fn simulate(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let model = ModelRef::take(args)?;
    let dataset = args.req("dataset")?;
    let ba_ms: f64 = args.opt_parse("ba-ms", 0.5)?;
    let fat_ms: f64 = args.opt_parse("fat-ms", 2.0)?;
    let flow_ms: f64 = args.opt_parse("flow-ms", 1000.0)?;
    args.finish()?;
    let clf = load_model(&model, &ctx.registry)?;
    let ds = CampaignDataset::load(&dataset).map_err(|e| ArgError(e.to_string()))?;
    let sim = SimConfig::new(ProtocolParams::new(ba_preset(ba_ms)?, fat_ms));

    let mut t = TextTable::new(["algorithm", "mean MB", "mean deficit vs Oracle-Data (MB)"]);
    let policies = [
        PolicyKind::Libra,
        PolicyKind::BaFirst,
        PolicyKind::RaFirst,
        PolicyKind::OracleData,
        PolicyKind::OracleDelay,
    ];
    // Entries evaluate in parallel; sums fold in entry order so the
    // floating-point totals match a sequential run exactly.
    let per_entry: Vec<Vec<(f64, f64)>> = par_map(&ds.entries, |_, entry| {
        let seg = SegmentData::from_entry(entry, flow_ms);
        let state = LinkState::at_mcs(entry.initial.best_mcs());
        let oracle = run_policy_segment(&seg, PolicyKind::OracleData, None, state, &sim);
        policies
            .iter()
            .map(|&p| {
                let out = run_policy_segment(&seg, p, Some(&clf), state, &sim);
                (out.bytes / 1e6, (oracle.bytes - out.bytes).max(0.0) / 1e6)
            })
            .collect()
    });
    let mut totals = vec![0.0f64; policies.len()];
    let mut deficits = vec![0.0f64; policies.len()];
    for row in per_entry {
        for (i, (mb, deficit)) in row.into_iter().enumerate() {
            totals[i] += mb;
            deficits[i] += deficit;
        }
    }
    let n = ds.entries.len().max(1) as f64;
    for (i, p) in policies.iter().enumerate() {
        t.row([
            p.label().to_string(),
            fmt_f(totals[i] / n, 1),
            fmt_f(deficits[i] / n, 2),
        ]);
    }
    Ok(format!(
        "{} entries, flow {flow_ms} ms, BA {ba_ms} ms, FAT {fat_ms} ms\n{}",
        ds.entries.len(),
        t.render()
    ))
}

fn timeline(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let model = ModelRef::take(args)?;
    let scenario = match args.opt("scenario").as_deref() {
        None | Some("mixed") => ScenarioType::Mixed,
        Some("mobility") | Some("motion") => ScenarioType::Mobility,
        Some("blockage") => ScenarioType::Blockage,
        Some("interference") => ScenarioType::Interference,
        Some(other) => return Err(ArgError(format!("unknown scenario `{other}`"))),
    };
    let n: usize = args.opt_parse("timelines", 10)?;
    let ba_ms: f64 = args.opt_parse("ba-ms", 0.5)?;
    let fat_ms: f64 = args.opt_parse("fat-ms", 2.0)?;
    let seed: u64 = args.opt_parse("seed", 1)?;
    args.finish()?;
    let clf = load_model(&model, &ctx.registry)?;
    let sim = SimConfig::new(ProtocolParams::new(ba_preset(ba_ms)?, fat_ms));
    let instruments = Instruments::default();
    let tl_cfg = TimelineConfig::default();

    let mut t = TextTable::new([
        "algorithm",
        "data ratio vs Oracle-Data",
        "mean recovery (ms)",
    ]);
    let mut ratios = vec![Vec::new(); 3];
    let mut delays = vec![Vec::new(); 3];
    // Each timeline owns a derived RNG stream; results fold back in
    // timeline order, so the means match a sequential run exactly.
    let per_timeline: Vec<Vec<(Option<f64>, f64)>> = par_map_index(n, |i| {
        let mut rng = rng_from_seed(libra_util::rng::derive_seed_index(seed, i as u64));
        let tl = generate_timeline(scenario, &tl_cfg, &mut rng);
        let oracle = run_timeline(&tl, PolicyKind::OracleData, None, &sim, &instruments);
        PolicyKind::HEURISTICS
            .iter()
            .map(|&p| {
                let r = run_timeline(&tl, p, Some(&clf), &sim, &instruments);
                let ratio = (oracle.bytes > 0.0).then(|| r.bytes / oracle.bytes);
                (ratio, r.mean_recovery_delay_ms())
            })
            .collect()
    });
    for row in per_timeline {
        for (j, (ratio, delay)) in row.into_iter().enumerate() {
            if let Some(r) = ratio {
                ratios[j].push(r);
            }
            delays[j].push(delay);
        }
    }
    for (j, p) in PolicyKind::HEURISTICS.iter().enumerate() {
        t.row([
            p.label().to_string(),
            fmt_f(libra_util::stats::mean(&ratios[j]), 3),
            fmt_f(libra_util::stats::mean(&delays[j]), 1),
        ]);
    }
    Ok(format!(
        "{n} {scenario:?} timelines, BA {ba_ms} ms, FAT {fat_ms} ms\n{}",
        t.render()
    ))
}

fn multisim(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let aps: u32 = args.opt_parse("aps", 4)?;
    let stations: u32 = args.opt_parse("stations", 16)?;
    if aps == 0 || stations == 0 {
        return Err(ArgError("--aps and --stations must be at least 1".into()));
    }
    let mut cfg = MultiSimConfig::new(aps, stations);
    cfg.duration_ms = args.opt_parse("duration-ms", cfg.duration_ms)?;
    cfg.seed = args.opt_parse("seed", cfg.seed)?;
    cfg.delay = DelayModel::Constant(args.opt_parse("decision-delay-ms", 0.0)?);
    // A recorded serving trace turns the constant into the measured
    // per-decision latency distribution (ROADMAP item 4).
    if let Some(trace) = args.opt("delay-from-trace") {
        let text = std::fs::read_to_string(&trace)
            .map_err(|e| ArgError(format!("--delay-from-trace {trace}: {e}")))?;
        let hist = obs::parse_hist_jsonl(&text, "serve.decision_ns").ok_or_else(|| {
            ArgError(format!(
                "--delay-from-trace {trace}: no `serve.decision_ns` histogram in trace \
                 (run `libractl serve`/`loadgen` with --trace first)"
            ))
        })?;
        let dist = DelayDist::from_hist(&hist, 1e-6)
            .ok_or_else(|| ArgError(format!("--delay-from-trace {trace}: histogram is empty")))?;
        cfg.delay = DelayModel::Measured(dist);
    }
    cfg.roam_interval_ms = args.opt_parse("roam-interval-ms", cfg.roam_interval_ms)?;
    let ba_ms: f64 = args.opt_parse("ba-ms", 5.0)?;
    let fat_ms: f64 = args.opt_parse("fat-ms", 2.0)?;
    cfg.sim = SimConfig::new(ProtocolParams::new(ba_preset(ba_ms)?, fat_ms));
    cfg.policy = match args.opt("policy").as_deref() {
        None | Some("ra-first") => PolicyKind::RaFirst,
        Some("ba-first") => PolicyKind::BaFirst,
        Some("libra") => PolicyKind::Libra,
        Some("oracle-data") => PolicyKind::OracleData,
        Some("oracle-delay") => PolicyKind::OracleDelay,
        Some(other) => return Err(ArgError(format!("unknown policy `{other}`"))),
    };
    // LiBRA needs a classifier; the other policies ignore one, so the
    // flag is only consumed (and a model only loaded) when it matters.
    let model = args.opt("model");
    args.finish()?;
    let owned = match (&cfg.policy, model) {
        (PolicyKind::Libra, Some(m)) => Some(load_model(&ModelRef(m), &ctx.registry)?),
        _ => None,
    };
    let clf = match (&cfg.policy, owned.as_ref()) {
        (PolicyKind::Libra, Some(c)) => Some(c),
        (PolicyKind::Libra, None) => Some(libra_fuzz::default_classifier()),
        _ => None,
    };

    let start = std::time::Instant::now();
    let out = run_multisim(&cfg, clf);
    let elapsed = start.elapsed().as_secs_f64();
    let eps = out.events as f64 / elapsed.max(1e-9);

    let broken: u64 = out.stations.iter().map(|s| s.broken_segments).sum();
    let recovery: f64 = out.stations.iter().map(|s| s.recovery_ms_total).sum();
    let mut t = TextTable::new(["metric", "value"]);
    t.row(["events".into(), out.events.to_string()]);
    t.row(["events/sec".into(), fmt_f(eps, 0)]);
    t.row(["total data (GB)".into(), fmt_f(out.total_bytes / 1e9, 2)]);
    for (label, p) in [("p5", 5.0), ("p50", 50.0), ("p95", 95.0)] {
        t.row([
            format!("station tput {label} (Mbps)"),
            fmt_f(out.mbps_percentile(p), 1),
        ]);
    }
    t.row(["handoffs".into(), out.total_handoffs().to_string()]);
    t.row(["broken segments".into(), broken.to_string()]);
    t.row([
        "mean recovery (ms)".into(),
        fmt_f(
            if broken > 0 {
                recovery / broken as f64
            } else {
                0.0
            },
            1,
        ),
    ]);
    // `digest 0x…` is a stable machine-readable line: CI runs the same
    // deployment at two --threads counts and compares these tokens.
    Ok(format!(
        "{} under {}: {aps} APs x {stations} stations, {:.0} ms simulated in {elapsed:.1} s \
         (seed {:#x}, BA {ba_ms} ms, FAT {fat_ms} ms)\ndigest {:#018x}\n{}",
        cfg.policy.label(),
        if cfg.roam_interval_ms > 0.0 && aps > 1 {
            "roaming"
        } else {
            "static association"
        },
        cfg.duration_ms,
        cfg.seed,
        out.digest,
        t.render()
    ))
}

/// Resolves a [`ModelRef`] into a [`ServedModel`] — the classifier
/// plus the `name@version` identity responses are stamped with. File
/// paths serve as version 1 under the artifact's name (legacy raw
/// models under the file stem); registry references keep the version
/// they resolve to.
fn load_served(model: &ModelRef, registry: &ModelRegistry) -> Result<ServedModel, ArgError> {
    let reference = model.as_str();
    let path = std::path::Path::new(reference);
    if path.is_file() {
        return match ModelArtifact::read(path) {
            Ok(art) => ServedModel::from_artifact(&art, 1).map_err(|e| ArgError(e.to_string())),
            // Not an artifact: fall back to the legacy binary format.
            Err(libra_infer::Error::BadMagic) => {
                let clf = LibraClassifier::load(path).map_err(|e| ArgError(e.to_string()))?;
                let name = path
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "model".to_string());
                Ok(ServedModel::new(name, 1, clf))
            }
            Err(e) => Err(ArgError(e.to_string())),
        };
    }
    let spec = ModelSpec::parse(reference)
        .map_err(|e| ArgError(format!("--model {reference}: not a file, and {e}")))?;
    let (version, artifact) = registry.load(&spec).map_err(|e| ArgError(e.to_string()))?;
    ServedModel::from_artifact(&artifact, version).map_err(|e| ArgError(e.to_string()))
}

/// How often `loadgen --watch` polls the registry, in submissions.
/// Steady-state polls are one latest-pointer read, so this is cheap;
/// it only bounds how stale a freshly saved version can be.
const WATCH_POLL_EVERY: usize = 4096;

fn serve(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let model = ModelRef::take(args)?;
    let eopts = EngineOpts::take(args)?;
    let requests_path = args.req("requests")?;
    let shards: usize = args.opt_parse("shards", 4)?;
    let batch: usize = args.opt_parse("batch", 64)?;
    args.finish()?;
    if shards == 0 || batch == 0 {
        return Err(ArgError("--shards and --batch must be at least 1".into()));
    }

    let mut served = load_served(&model, &ctx.registry)?;
    // load_served already routed the blocked exact default; re-select
    // only to honor an explicit `--engine`/`--quantized` choice (exact
    // engines are bitwise identical, so the digest cannot move).
    served.classifier.select_engine(&eopts).map_err(ArgError)?;
    let engine_label = served.classifier.engine_label();
    let served = std::sync::Arc::new(served);
    let identity = format!("{}@{}", served.name, served.version);
    let requests =
        libra_serve::load_requests(std::path::Path::new(&requests_path)).map_err(ArgError)?;

    let cfg = ServeConfig {
        shards,
        max_batch: batch,
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let outcome = libra_serve::serve_all(&cfg, served, &requests);
    let elapsed = start.elapsed().as_secs_f64();
    let digest = libra_serve::response_digest(&outcome.responses);
    let dps = outcome.responses.len() as f64 / elapsed.max(1e-9);
    // `digest 0x…` is a stable machine-readable line: CI replays a
    // recording at two shard counts and compares these tokens.
    Ok(format!(
        "served {} requests with {identity} ({engine_label} engine) on {shards} shard(s), \
         batch {batch}: {dps:.0} decisions/s over {} batches\ndigest {digest:#018x}\n",
        outcome.responses.len(),
        outcome.batches,
    ))
}

fn loadgen(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let model = ModelRef::take(args)?;
    let n_requests: usize = args.opt_parse("requests", 100_000)?;
    let stations: u64 = args.opt_parse("stations", 64)?;
    let seed: u64 = args.opt_parse("seed", 0x5E27E)?;
    let shards: usize = args.opt_parse("shards", 4)?;
    let batch: usize = args.opt_parse("batch", 64)?;
    let record = args.opt("record");
    let no_record = args.switch("no-record");
    let watch = args.switch("watch");
    let publish = args.opt("publish");
    let publish_after: usize = args.opt_parse("publish-after", n_requests / 2)?;
    args.finish()?;
    if shards == 0 || batch == 0 {
        return Err(ArgError("--shards and --batch must be at least 1".into()));
    }
    if record.is_some() && no_record {
        return Err(ArgError("--record and --no-record conflict".into()));
    }

    let served = std::sync::Arc::new(load_served(&model, &ctx.registry)?);
    let identity = format!("{}@{}", served.name, served.version);
    let second = match &publish {
        Some(reference) => Some(std::sync::Arc::new(load_served(
            &ModelRef(reference.clone()),
            &ctx.registry,
        )?)),
        None => None,
    };
    // The watcher starts at the version we just loaded, so it reports
    // only publications that happen *during* the run.
    let mut watcher = if watch {
        let spec = ModelSpec::parse(model.as_str())
            .map_err(|e| ArgError(format!("--watch needs a registry --model: {e}")))?;
        Some(
            RegistryWatcher::starting_at(ctx.registry.clone(), &spec.name, served.version)
                .map_err(|e| ArgError(e.to_string()))?,
        )
    } else {
        None
    };

    let requests = libra_serve::generate_requests(&LoadConfig {
        requests: n_requests,
        stations,
        seed,
    });
    let record_line = if no_record {
        "record: disabled (--no-record)".to_string()
    } else {
        let path = record
            .map(std::path::PathBuf::from)
            .unwrap_or_else(libra_serve::default_record_path);
        libra_serve::save_requests(&path, &requests).map_err(ArgError)?;
        format!("record: wrote {} ({n_requests} requests)", path.display())
    };

    let cfg = ServeConfig {
        shards,
        max_batch: batch,
        ..Default::default()
    };
    let service = DecisionService::start(&cfg, served);
    let mut swaps: Vec<String> = Vec::new();
    let start = std::time::Instant::now();
    for (i, &request) in requests.iter().enumerate() {
        if let Some(second) = &second {
            if i == publish_after {
                let epoch = service.publish(std::sync::Arc::clone(second));
                swaps.push(format!(
                    "published {}@{} at request {i} (epoch {epoch})",
                    second.name, second.version
                ));
            }
        }
        if let Some(watcher) = watcher.as_mut() {
            if i % WATCH_POLL_EVERY == 0 {
                if let Some((version, artifact)) = watcher.poll() {
                    let fresh = ServedModel::from_artifact(&artifact, version)
                        .map_err(|e| ArgError(e.to_string()))?;
                    let epoch = service.publish(std::sync::Arc::new(fresh));
                    swaps.push(format!(
                        "watch: picked up {}@{version} at request {i} (epoch {epoch})",
                        watcher.name()
                    ));
                }
            }
        }
        service.submit(request);
    }
    let outcome = service.finish();
    let elapsed = start.elapsed().as_secs_f64();
    let digest = libra_serve::response_digest(&outcome.responses);
    let dps = outcome.responses.len() as f64 / elapsed.max(1e-9);

    let mut versions: Vec<u32> = outcome.responses.iter().map(|r| r.model_version).collect();
    versions.sort_unstable();
    versions.dedup();
    let versions = versions
        .iter()
        .map(u32::to_string)
        .collect::<Vec<_>>()
        .join(",");

    let mut out =
        format!("generated {n_requests} requests ({stations} stations, seed {seed:#x})\n");
    out.push_str(&record_line);
    out.push('\n');
    for swap in &swaps {
        out.push_str(swap);
        out.push('\n');
    }
    out.push_str(&format!(
        "served with {identity} on {shards} shard(s), batch {batch}: \
         {dps:.0} decisions/s over {} batches, versions {versions}\ndigest {digest:#018x}\n",
        outcome.batches,
    ));
    Ok(out)
}

fn fuzz_export(args: &mut Args) -> Result<String, ArgError> {
    let into = args.req("into")?;
    let top: usize = args.opt_parse("top", 8)?;
    let corpus_dir = fuzz_corpus_dir(args);
    args.finish()?;

    let entries = libra_fuzz::load_corpus(&corpus_dir).map_err(ArgError)?;
    if entries.is_empty() {
        return Err(ArgError(format!(
            "no corpus entries under {} — run `libractl fuzz run` first",
            corpus_dir.display()
        )));
    }
    let path = std::path::Path::new(&into);
    let mut dataset = if path.is_file() {
        CampaignDataset::load(path).map_err(|e| ArgError(e.to_string()))?
    } else {
        CampaignDataset {
            entries: Vec::new(),
            na_entries: Vec::new(),
        }
    };
    let before = dataset.entries.len() + dataset.na_entries.len();
    let added = libra_fuzz::export_to_campaign(&entries, top, &mut dataset);
    dataset.save(path).map_err(|e| ArgError(e.to_string()))?;
    Ok(format!(
        "exported top {} of {} corpus scenarios into {into}: +{added} rows ({before} -> {} total)\n",
        top.min(entries.len()),
        entries.len(),
        before + added,
    ))
}

fn fuzz_traincheck(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let top: usize = args.opt_parse("top", 8)?;
    let tolerance: f64 = args.opt_parse("tolerance", 0.01)?;
    let train_seed: u64 = args.opt_parse("train-seed", libra_fuzz::DEFAULT_TRAIN_SEED)?;
    let corpus_dir = fuzz_corpus_dir(args);
    let owned = fuzz_classifier(args, ctx)?;
    args.finish()?;

    let entries = libra_fuzz::load_corpus(&corpus_dir).map_err(ArgError)?;
    if entries.is_empty() {
        return Err(ArgError(format!(
            "no corpus entries in {} — run `libractl fuzz run` first",
            corpus_dir.display()
        )));
    }
    let baseline = match owned.as_ref() {
        Some(c) => c,
        None => libra_fuzz::default_classifier(),
    };
    let base = libra_fuzz::reduced_campaign();
    let check = libra_fuzz::retrain_close(&entries, &base, baseline, top, train_seed, tolerance);

    let mut t = TextTable::new(["scenario", "before", "after", "delta", "trained-on"]);
    for row in &check.rows {
        t.row([
            row.name.clone(),
            fmt_f(row.before_max, 4),
            fmt_f(row.after_max, 4),
            format!("{:+.4}", row.delta),
            if row.exported { "yes" } else { "held out" }.to_string(),
        ]);
    }
    Ok(format!(
        "traincheck: retrained on {} rows (+{} exported from top {} of {} corpus scenarios)\n\
         mean max-regret {:.4} -> {:.4} ({:+.4}); \
         {} improved / {} worsened of {} (tolerance {tolerance})\n{}",
        check.train_rows,
        check.exported_rows,
        top.min(entries.len()),
        entries.len(),
        check.mean_before,
        check.mean_after,
        check.mean_delta(),
        check.improved,
        check.worsened,
        check.rows.len(),
        t.render()
    ))
}

fn lifecycle_action_label(action: &LifecycleAction) -> String {
    match action {
        LifecycleAction::Hold => "hold".into(),
        LifecycleAction::Promote { from, to } => format!("promote v{from} -> v{to}"),
        LifecycleAction::Rollback { from, to } => format!("rollback v{from} -> v{to}"),
    }
}

fn chaos(args: &mut Args) -> Result<String, ArgError> {
    let defaults = ChaosConfig::default();
    let cfg = ChaosConfig {
        seed: args.opt_parse("seed", defaults.seed)?,
        requests_per_round: args.opt_parse("requests", defaults.requests_per_round)?,
        stations: args.opt_parse("stations", defaults.stations)?,
        shards: args.opt_parse("shards", defaults.shards)?,
        ..defaults
    };
    let dir = args
        .opt("registry-dir")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| libra_util::paths::results_root().join("chaos_models"));
    args.finish()?;

    // The drill owns its registry: the storyline publishes versions
    // 1..3 under fixed names, so it always starts from a clean slate
    // (and never touches the real model registry).
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| ArgError(e.to_string()))?;
    let registry = ModelRegistry::open(&dir);
    let outcome = run_chaos(&cfg, &registry, "chaos").map_err(|e| ArgError(e.to_string()))?;

    let mut t = TextTable::new([
        "round",
        "phase",
        "served",
        "decisions",
        "degraded",
        "per-mille",
        "max psi",
        "action",
    ]);
    for r in &outcome.rounds {
        t.row([
            r.round.to_string(),
            r.label.to_string(),
            format!("v{}", r.served_version),
            r.decisions.to_string(),
            r.degraded.to_string(),
            r.degraded_per_mille.to_string(),
            fmt_f(r.max_psi, 3),
            lifecycle_action_label(&r.action),
        ]);
    }
    let mut out = format!(
        "chaos drill: seed {:#x}, {} rounds x {} requests on {} shard(s), registry {}\n{}",
        cfg.seed,
        outcome.rounds.len(),
        cfg.requests_per_round,
        cfg.shards,
        dir.display(),
        t.render()
    );
    for event in &outcome.events {
        if !matches!(event.action, LifecycleAction::Hold) {
            out.push_str(&format!(
                "round {}: {} ({})\n",
                event.round,
                lifecycle_action_label(&event.action),
                event.reason
            ));
        }
    }
    if let (Some(round), Some(decisions)) = (outcome.rollback_round, outcome.decisions_to_rollback)
    {
        out.push_str(&format!(
            "rollback restored the prior LATEST in round {round} after {decisions} decisions\n"
        ));
    }
    out.push_str(&format!(
        "totals: {} decisions, {} degraded, {} deadline misses, {} drops, {} artifact faults\n\
         final LATEST: chaos@v{}\ndigest {:#018x}\n",
        outcome.decisions,
        outcome.degraded,
        outcome.deadline_misses,
        outcome.drops,
        outcome.artifact_faults,
        outcome.final_latest,
        outcome.digest,
    ));
    Ok(out)
}

/// The classifier a fuzz command scores against: `--model` when given,
/// else the shared reduced-campaign classifier (trained in-process, so
/// fuzz runs need no registry state).
fn fuzz_classifier(
    args: &mut Args,
    ctx: &CommandContext,
) -> Result<Option<LibraClassifier>, ArgError> {
    match args.opt("model") {
        Some(m) => Ok(Some(load_model(&ModelRef(m), &ctx.registry)?)),
        None => Ok(None),
    }
}

fn fuzz_corpus_dir(args: &mut Args) -> std::path::PathBuf {
    args.opt("corpus")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(libra_util::paths::corpus_root)
}

fn fuzz_run(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let budget: usize = args.opt_parse("budget", 64)?;
    let seed: u64 = args.opt_parse("seed", 0xF022)?;
    let batch: usize = args.opt_parse("batch", 16)?;
    let keep_regret: f64 = args.opt_parse("keep-regret", 0.05)?;
    let max_corpus: usize = args.opt_parse("max-corpus", 32)?;
    let ba_ms: f64 = args.opt_parse("ba-ms", 250.0)?;
    let fat_ms: f64 = args.opt_parse("fat-ms", 2.0)?;
    let flow_ms: f64 = args.opt_parse("flow-ms", 1000.0)?;
    let corpus_dir = fuzz_corpus_dir(args);
    let owned = fuzz_classifier(args, ctx)?;
    args.finish()?;
    let clf = match owned.as_ref() {
        Some(c) => c,
        None => libra_fuzz::default_classifier(),
    };

    let eval = libra_fuzz::EvalParams {
        sim: SimConfig::new(ProtocolParams::new(ba_preset(ba_ms)?, fat_ms)),
        flow_ms,
        ..libra_fuzz::EvalParams::default()
    };
    let cfg = libra_fuzz::FuzzConfig {
        seed,
        budget,
        batch,
        eval,
        keep_regret,
        max_corpus,
    };
    let start = std::time::Instant::now();
    let outcome = libra_fuzz::run_fuzz(&cfg, clf);
    let elapsed = start.elapsed().as_secs_f64();

    libra_fuzz::save_corpus(&corpus_dir, &outcome.corpus).map_err(ArgError)?;
    let results = libra_util::paths::results_root();
    std::fs::create_dir_all(&results).map_err(|e| ArgError(e.to_string()))?;
    let bench_path = results.join("BENCH_fuzz.json");
    let json = libra_fuzz::bench_json(&outcome.stats, outcome.corpus.len(), elapsed);
    std::fs::write(&bench_path, &json).map_err(|e| ArgError(e.to_string()))?;

    let s = &outcome.stats;
    let mut t = TextTable::new(["scenario", "env", "max regret", "mean regret", "buckets"]);
    for e in &outcome.corpus {
        t.row([
            e.spec.name.clone(),
            e.spec.env.name().to_string(),
            fmt_f(e.max_regret, 4),
            fmt_f(e.mean_regret, 4),
            e.coverage.len().to_string(),
        ]);
    }
    Ok(format!(
        "fuzz: seed {seed:#x}, {} candidates in {elapsed:.1} s, {} kept, \
         {} coverage buckets, max regret {:.4}\n\
         corpus: {} entries in {}\nbench: wrote {}\n{}",
        s.evaluated,
        s.kept,
        s.coverage_buckets,
        s.max_regret,
        outcome.corpus.len(),
        corpus_dir.display(),
        bench_path.display(),
        t.render()
    ))
}

fn fuzz_replay(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let tolerance: f64 = args.opt_parse("tolerance", 0.01)?;
    let corpus_dir = fuzz_corpus_dir(args);
    let owned = fuzz_classifier(args, ctx)?;
    args.finish()?;

    // Load (and fail on) the corpus before the classifier: a missing
    // corpus should error instantly, not after training.
    let entries = libra_fuzz::load_corpus(&corpus_dir).map_err(ArgError)?;
    if entries.is_empty() {
        return Err(ArgError(format!(
            "no corpus entries in {} — run `libractl fuzz run` first",
            corpus_dir.display()
        )));
    }
    let clf = match owned.as_ref() {
        Some(c) => c,
        None => libra_fuzz::default_classifier(),
    };
    let rows = libra_fuzz::replay(&entries, clf, tolerance);
    let mut t = TextTable::new(["scenario", "stored", "replayed", "digest", "status"]);
    let mut failures = Vec::new();
    for row in &rows {
        let digest_ok = row.stored_digest == row.replayed_digest;
        let status = if row.worsened {
            "WORSENED"
        } else if !digest_ok {
            "DIGEST DRIFT"
        } else {
            "ok"
        };
        if row.worsened || !digest_ok {
            failures.push(format!("{}: {}", row.name, status));
        }
        t.row([
            row.name.clone(),
            fmt_f(row.stored_max, 4),
            fmt_f(row.replayed_max, 4),
            if digest_ok { "match" } else { "DRIFT" }.to_string(),
            status.to_string(),
        ]);
    }
    let summary = format!(
        "replayed {} corpus scenarios from {} (tolerance {tolerance})\n{}",
        rows.len(),
        corpus_dir.display(),
        t.render()
    );
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(ArgError(format!(
            "{summary}regression: {}",
            failures.join("; ")
        )))
    }
}

fn fuzz_minimize(args: &mut Args, ctx: &CommandContext) -> Result<String, ArgError> {
    let name = args.req("scenario")?;
    let out_file = args.opt("out");
    let corpus_dir = fuzz_corpus_dir(args);
    let owned = fuzz_classifier(args, ctx)?;
    args.finish()?;
    let clf = match owned.as_ref() {
        Some(c) => c,
        None => libra_fuzz::default_classifier(),
    };

    let entries = libra_fuzz::load_corpus(&corpus_dir).map_err(ArgError)?;
    let entry = entries
        .iter()
        .find(|e| e.spec.name == name)
        .ok_or_else(|| {
            ArgError(format!(
                "no scenario `{name}` in {} ({} entries)",
                corpus_dir.display(),
                entries.len()
            ))
        })?;
    let size = |e: &libra_fuzz::CorpusEntry| {
        let blockers: usize = e.spec.new_states.iter().map(|s| s.blockers.len()).sum();
        let interferers: usize = e.spec.new_states.iter().map(|s| s.interferers.len()).sum();
        (e.spec.new_states.len(), blockers, interferers)
    };
    let minimized = libra_fuzz::minimize(entry, clf);
    let (s0, b0, i0) = size(entry);
    let (s1, b1, i1) = size(&minimized);
    let mut msg = format!(
        "{name}: {s0} states/{b0} blockers/{i0} interferers -> \
         {s1} states/{b1} blockers/{i1} interferers, \
         max regret {:.4} -> {:.4}\n",
        entry.max_regret, minimized.max_regret
    );
    if let Some(path) = out_file {
        libra_util::binser::write_file(&path, &minimized)
            .map_err(|e| ArgError(format!("write {path}: {e:?}")))?;
        msg.push_str(&format!("wrote minimized entry to {path}\n"));
    }
    Ok(msg)
}

fn info(args: &mut Args) -> Result<String, ArgError> {
    args.finish()?;
    let table = McsTable::x60();
    let mut out = String::from("libractl — LiBRA reproduction toolkit\n\n");
    out.push_str("X60 MCS table:\n");
    let mut t = TextTable::new(["MCS", "rate (Mbps)", "SNR midpoint (dB)"]);
    for e in table.iter() {
        t.row([
            e.index.to_string(),
            fmt_f(e.rate_mbps, 0),
            fmt_f(e.snr_midpoint_db, 1),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\nBA overhead presets (derived from 802.11ad BFT accounting):\n");
    let mut t = TextTable::new(["preset", "duration (ms)", "derived (ms)"]);
    for (p, derived) in [
        (
            BaOverheadPreset::QuasiOmni30,
            libra_mac::derive_quasi_omni_ba_ms(30.0),
        ),
        (
            BaOverheadPreset::QuasiOmni3,
            libra_mac::derive_quasi_omni_ba_ms(3.0),
        ),
        (
            BaOverheadPreset::Directional9,
            libra_mac::derive_directional_ba_ms(9.0),
        ),
        (
            BaOverheadPreset::Directional7,
            libra_mac::derive_directional_ba_ms(7.0),
        ),
    ] {
        t.row([
            p.label().to_string(),
            fmt_f(p.duration_ms(), 1),
            fmt_f(derived, 1),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_words(words: &[&str]) -> Result<String, ArgError> {
        run(Args::parse(words.iter().map(|s| s.to_string())).unwrap())
    }

    /// Serialises tests that override the process-global
    /// `LIBRA_RESULTS_DIR` environment variable.
    static RESULTS_ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn lock_results_env() -> std::sync::MutexGuard<'static, ()> {
        RESULTS_ENV_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn empty_prints_usage() {
        let out = run_words(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = run_words(&["frobnicate"]).unwrap_err();
        assert!(err.0.contains("unknown command"));
        assert!(err.0.contains("USAGE"));
    }

    #[test]
    fn info_lists_presets_and_mcs() {
        let out = run_words(&["info"]).unwrap();
        assert!(out.contains("4750"));
        assert!(out.contains("BA 250ms"));
    }

    #[test]
    fn ba_preset_validation() {
        assert!(ba_preset(0.5).is_ok());
        assert!(ba_preset(250.0).is_ok());
        assert!(ba_preset(42.0).is_err());
    }

    #[test]
    fn full_roundtrip_generate_train_classify_simulate() {
        let dir = std::env::temp_dir().join("libractl-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dir.join("testing.bin");
        let model = dir.join("model.bin");

        let out = run_words(&[
            "dataset",
            "generate",
            "--plan",
            "testing",
            "--out",
            ds.to_str().unwrap(),
            "--repeats",
            "1",
        ])
        .unwrap();
        assert!(out.contains("wrote"));

        let out = run_words(&["dataset", "summary", "--input", ds.to_str().unwrap()]).unwrap();
        assert!(out.contains("Overall"));

        let out = run_words(&[
            "train",
            "--dataset",
            ds.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("trained"));

        let out = run_words(&[
            "classify",
            "--model",
            model.to_str().unwrap(),
            "--snr-diff",
            "16",
            "--cdr",
            "0.0",
            "--initial-mcs",
            "4",
        ])
        .unwrap();
        assert!(out.contains("adaptation"), "{out}");

        let out = run_words(&[
            "simulate",
            "--model",
            model.to_str().unwrap(),
            "--dataset",
            ds.to_str().unwrap(),
            "--flow-ms",
            "400",
        ])
        .unwrap();
        assert!(out.contains("LiBRA") && out.contains("Oracle-Data"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_flag_writes_trace_files() {
        let _env = lock_results_env();
        let dir = std::env::temp_dir().join("libractl-trace-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Redirect the results root so the trace files land in the
        // temp dir; the lock serialises every test that overrides it.
        let results = dir.join("results");
        std::env::set_var(libra_util::paths::RESULTS_DIR_ENV, &results);
        let ds = dir.join("testing.bin");
        let model = dir.join("model.bin");

        run_words(&[
            "dataset",
            "generate",
            "--plan",
            "testing",
            "--out",
            ds.to_str().unwrap(),
            "--repeats",
            "1",
        ])
        .unwrap();
        run_words(&[
            "train",
            "--dataset",
            ds.to_str().unwrap(),
            "--out",
            model.to_str().unwrap(),
        ])
        .unwrap();

        let out = run_words(&[
            "classify",
            "--model",
            model.to_str().unwrap(),
            "--snr-diff",
            "16",
            "--cdr",
            "0.0",
            "--initial-mcs",
            "4",
            "--trace",
        ])
        .unwrap();
        assert!(out.contains("trace: wrote"), "{out}");
        let jsonl = std::fs::read_to_string(results.join("trace.jsonl")).unwrap();
        assert!(jsonl.contains("core.decide.calls"), "{jsonl}");
        assert!(results.join("obs_summary.txt").is_file());

        std::env::remove_var(libra_util::paths::RESULTS_DIR_ENV);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fuzz_run_replay_minimize_roundtrip() {
        let _env = lock_results_env();
        let dir = std::env::temp_dir().join("libractl-fuzz-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let corpus = dir.join("corpus");
        let corpus = corpus.to_str().unwrap();
        // Redirect the results root so BENCH_fuzz.json lands in the
        // temp dir (the corpus path is passed explicitly).
        let results = dir.join("results");
        std::env::set_var(libra_util::paths::RESULTS_DIR_ENV, &results);

        // Replay before any run: a clear error, not a panic.
        let err = run_words(&["fuzz", "replay", "--corpus", corpus]).unwrap_err();
        assert!(err.0.contains("no corpus entries"), "{err}");

        let out = run_words(&[
            "fuzz", "run", "--budget", "3", "--batch", "3", "--seed", "5", "--corpus", corpus,
        ])
        .unwrap();
        assert!(out.contains("3 candidates"), "{out}");
        assert!(results.join("BENCH_fuzz.json").is_file());
        let manifest =
            std::fs::read_to_string(std::path::Path::new(corpus).join("manifest.json")).unwrap();
        assert!(manifest.contains("\"version\": 1"), "{manifest}");

        let out = run_words(&["fuzz", "replay", "--corpus", corpus]).unwrap();
        assert!(out.contains("ok"), "{out}");
        assert!(!out.contains("WORSENED"), "{out}");

        // Minimize the first corpus scenario by name.
        let name = manifest
            .lines()
            .find_map(|l| {
                l.trim()
                    .strip_prefix("\"name\": \"")
                    .and_then(|r| r.strip_suffix("\","))
            })
            .expect("manifest has a name field")
            .to_string();
        let out =
            run_words(&["fuzz", "minimize", "--scenario", &name, "--corpus", corpus]).unwrap();
        assert!(out.contains("max regret"), "{out}");

        // Export the worst offenders into a campaign dataset; a second
        // export of the same corpus adds nothing (idempotent by name).
        let campaign = dir.join("campaign.bin");
        let campaign = campaign.to_str().unwrap();
        let out = run_words(&[
            "fuzz", "export", "--into", campaign, "--top", "2", "--corpus", corpus,
        ])
        .unwrap();
        assert!(out.contains("exported top"), "{out}");
        assert!(!out.contains("+0 rows"), "{out}");
        let out = run_words(&[
            "fuzz", "export", "--into", campaign, "--top", "2", "--corpus", corpus,
        ])
        .unwrap();
        assert!(out.contains("+0 rows"), "{out}");
        // The folded dataset is a normal campaign dataset.
        let out = run_words(&["dataset", "summary", "--input", campaign]).unwrap();
        assert!(out.contains("Overall"), "{out}");

        // Close the loop: retrain on the exported hard cases and
        // measure the per-scenario regret delta.
        let out = run_words(&["fuzz", "traincheck", "--top", "2", "--corpus", corpus]).unwrap();
        assert!(out.contains("traincheck: retrained on"), "{out}");
        assert!(out.contains("mean max-regret"), "{out}");

        std::env::remove_var(libra_util::paths::RESULTS_DIR_ENV);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_drill_rolls_back_then_promotes_with_invariant_digest() {
        let dir = std::env::temp_dir().join("libractl-chaos-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let reg = dir.join("models");
        let reg = reg.to_str().unwrap();

        let run_shards = |shards: &str| {
            run_words(&[
                "chaos",
                "--requests",
                "600",
                "--shards",
                shards,
                "--registry-dir",
                reg,
            ])
            .unwrap()
        };
        let one = run_shards("1");
        assert!(one.contains("rollback v2 -> v1"), "{one}");
        assert!(one.contains("promote v1 -> v3"), "{one}");
        assert!(one.contains("rollback restored the prior LATEST"), "{one}");
        assert!(one.contains("final LATEST: chaos@v3"), "{one}");

        // The storyline and its digest are invariant to the shard count.
        let four = run_shards("4");
        assert_eq!(digest_token(&one), digest_token(&four));

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The `digest 0x…` machine-readable token both serving commands
    /// print (what CI compares across shard counts).
    fn digest_token(out: &str) -> String {
        out.lines()
            .find(|l| l.starts_with("digest 0x"))
            .unwrap_or_else(|| panic!("no digest line in {out}"))
            .to_string()
    }

    #[test]
    fn loadgen_record_then_serve_replays_identically() {
        let dir = std::env::temp_dir().join("libractl-serve-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dir.join("testing.bin");
        let rec = dir.join("rec.bin");
        let rec = rec.to_str().unwrap();
        let models = dir.join("models");
        let models = models.to_str().unwrap();

        run_words(&[
            "dataset",
            "generate",
            "--plan",
            "testing",
            "--out",
            ds.to_str().unwrap(),
            "--repeats",
            "1",
        ])
        .unwrap();
        // Two registry versions: v2 is the hot-swap target.
        for _ in 0..2 {
            run_words(&[
                "train",
                "--dataset",
                ds.to_str().unwrap(),
                "--save",
                "serve-model",
                "--models-dir",
                models,
            ])
            .unwrap();
        }

        let out = run_words(&[
            "loadgen",
            "--model",
            "serve-model@1",
            "--requests",
            "600",
            "--stations",
            "16",
            "--seed",
            "9",
            "--shards",
            "2",
            "--batch",
            "16",
            "--record",
            rec,
            "--models-dir",
            models,
        ])
        .unwrap();
        assert!(out.contains("record: wrote"), "{out}");
        assert!(out.contains("versions 1"), "{out}");
        let live = digest_token(&out);

        // Replaying the recording reproduces the digest at any shape.
        let replay_one = run_words(&[
            "serve",
            "--model",
            "serve-model@1",
            "--requests",
            rec,
            "--shards",
            "1",
            "--batch",
            "5",
            "--models-dir",
            models,
        ])
        .unwrap();
        let replay_seven = run_words(&[
            "serve",
            "--model",
            "serve-model@1",
            "--requests",
            rec,
            "--shards",
            "7",
            "--batch",
            "64",
            "--models-dir",
            models,
        ])
        .unwrap();
        assert_eq!(live, digest_token(&replay_one));
        assert_eq!(live, digest_token(&replay_seven));

        // A reproducible mid-run publication: v2 goes live at request
        // 300 and both versions answer.
        let out = run_words(&[
            "loadgen",
            "--model",
            "serve-model@1",
            "--publish",
            "serve-model@2",
            "--publish-after",
            "300",
            "--requests",
            "600",
            "--stations",
            "16",
            "--seed",
            "9",
            "--no-record",
            "--models-dir",
            models,
        ])
        .unwrap();
        assert!(
            out.contains("published serve-model@2 at request 300"),
            "{out}"
        );
        assert!(out.contains("versions 1,2"), "{out}");
        assert!(out.contains("record: disabled"), "{out}");

        // Flag validation: conflicting record flags are rejected.
        let err = run_words(&[
            "loadgen",
            "--model",
            "serve-model@1",
            "--record",
            rec,
            "--no-record",
            "--models-dir",
            models,
        ])
        .unwrap_err();
        assert!(err.0.contains("conflict"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn multisim_runs_and_digest_is_thread_invariant() {
        // A tiny deployment so the test stays fast; roaming on so the
        // handoff path is exercised.
        let words = [
            "multisim",
            "--aps",
            "2",
            "--stations",
            "3",
            "--duration-ms",
            "800",
            "--roam-interval-ms",
            "300",
            "--policy",
            "ra-first",
        ];
        let run_at = |threads: &str| {
            let mut w: Vec<&str> = words.to_vec();
            w.extend(["--threads", threads]);
            run_words(&w).unwrap()
        };
        let one = run_at("1");
        assert!(one.contains("RA First"), "{one}");
        assert!(one.contains("2 APs x 3 stations"), "{one}");
        assert!(one.contains("events/sec"), "{one}");
        let two = run_at("2");
        assert_eq!(digest_token(&one), digest_token(&two));
        libra_util::par::set_threads(0);

        let err = run_words(&["multisim", "--aps", "0"]).unwrap_err();
        assert!(err.0.contains("at least 1"), "{err}");
        let err = run_words(&["multisim", "--policy", "bogus"]).unwrap_err();
        assert!(err.0.contains("unknown policy"), "{err}");
    }

    #[test]
    fn registry_workflow_save_list_inspect_predict() {
        let dir = std::env::temp_dir().join("libractl-registry-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ds = dir.join("testing.bin");
        let models = dir.join("models");
        let models = models.to_str().unwrap();

        run_words(&[
            "dataset",
            "generate",
            "--plan",
            "testing",
            "--out",
            ds.to_str().unwrap(),
            "--repeats",
            "1",
        ])
        .unwrap();

        // Train twice into the registry: versions 1 and 2.
        for _ in 0..2 {
            let out = run_words(&[
                "train",
                "--dataset",
                ds.to_str().unwrap(),
                "--save",
                "ba-forest",
                "--models-dir",
                models,
            ])
            .unwrap();
            assert!(out.contains("saved ba-forest@"), "{out}");
        }

        let out = run_words(&["models", "list", "--models-dir", models]).unwrap();
        assert!(out.contains("ba-forest") && out.contains("v2"), "{out}");

        let out = run_words(&[
            "models",
            "inspect",
            "--model",
            "ba-forest@1",
            "--models-dir",
            models,
        ])
        .unwrap();
        assert!(
            out.contains("forest model") && out.contains("digest"),
            "{out}"
        );

        // Same seed → same artifact bytes → the two versions share a digest.
        let out2 = run_words(&[
            "models",
            "inspect",
            "--model",
            "ba-forest@2",
            "--models-dir",
            models,
        ])
        .unwrap();
        let digest_of = |s: &str| {
            s.lines()
                .find(|l| l.contains("digest"))
                .map(|l| l.trim().to_string())
        };
        assert_eq!(
            digest_of(&out).map(|l| l.replace("@1", "")),
            digest_of(&out2).map(|l| l.replace("@2", ""))
        );

        // Predict and simulate straight from the registry reference.
        let out = run_words(&[
            "predict",
            "--model",
            "ba-forest",
            "--snr-diff",
            "16",
            "--cdr",
            "0.0",
            "--initial-mcs",
            "4",
            "--models-dir",
            models,
        ])
        .unwrap();
        assert!(
            out.contains("prediction:") && out.contains("vote share"),
            "{out}"
        );

        let out = run_words(&[
            "simulate",
            "--model",
            "ba-forest@2",
            "--dataset",
            ds.to_str().unwrap(),
            "--flow-ms",
            "400",
            "--models-dir",
            models,
        ])
        .unwrap();
        assert!(out.contains("LiBRA"), "{out}");

        // Unknown registry names fail with a registry error.
        let err = run_words(&[
            "predict",
            "--model",
            "no-such-model",
            "--models-dir",
            models,
        ])
        .unwrap_err();
        assert!(err.0.contains("no model named"), "{err}");

        let _ = std::fs::remove_dir_all(&dir);
    }
}
