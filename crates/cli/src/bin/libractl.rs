//! `libractl` — see `libra_cli` for the command set.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match libra_cli::Args::parse(raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match libra_cli::run(args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
