//! Minimal `--flag value` argument parsing (no external dependency).
//!
//! Grammar: positional words first (the command path), then
//! `--key value` pairs and bare `--switch` flags. Unknown keys are
//! rejected at consumption time via [`Args::finish`].

use std::collections::BTreeMap;
use std::fmt;

/// Argument-parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: positionals + key/value options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    consumed: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// A `--key` followed by another `--…` token or by nothing is a
    /// boolean switch (stored as `"true"`).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut positionals = Vec::new();
        let mut options = BTreeMap::new();
        let mut it = raw.into_iter().peekable();
        let mut seen_flag = false;
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("empty flag name `--`".into()));
                }
                seen_flag = true;
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                if options.insert(key.to_string(), value).is_some() {
                    return Err(ArgError(format!("duplicate flag --{key}")));
                }
            } else if seen_flag {
                return Err(ArgError(format!(
                    "positional `{tok}` after flags — put commands first"
                )));
            } else {
                positionals.push(tok);
            }
        }
        Ok(Self {
            positionals,
            options,
            consumed: Vec::new(),
        })
    }

    /// The command path (positional words).
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Takes a required string option.
    pub fn req(&mut self, key: &str) -> Result<String, ArgError> {
        self.consumed.push(key.to_string());
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// Takes an optional string option.
    pub fn opt(&mut self, key: &str) -> Option<String> {
        self.consumed.push(key.to_string());
        self.options.get(key).cloned()
    }

    /// Takes an optional typed option with a default.
    pub fn opt_parse<T: std::str::FromStr>(
        &mut self,
        key: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: cannot parse `{v}`"))),
        }
    }

    /// Takes a boolean switch.
    pub fn switch(&mut self, key: &str) -> bool {
        self.opt(key).is_some()
    }

    /// Fails on any never-consumed option (typo protection).
    pub fn finish(&self) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !self.consumed.contains(key) {
                return Err(ArgError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

/// Flags shared by **every** subcommand, consumed once before dispatch:
/// `--threads N`, `--trace`, and `--models-dir DIR`. Commands that do
/// not fan out simply never observe the worker count; commands that do
/// not touch the registry never open it.
#[derive(Debug, Clone, Default)]
pub struct CommonOpts {
    /// Worker threads for parallel sections (`0` = environment default:
    /// `LIBRA_THREADS`, else all cores).
    pub threads: usize,
    /// Enable telemetry collection; on success the command appends the
    /// trace-file locations to its output.
    pub trace: bool,
    /// Model-registry root (default `results/models/`, overridable with
    /// the `LIBRA_MODELS_DIR` environment variable).
    pub models_dir: Option<String>,
}

impl CommonOpts {
    /// Consumes the shared flags from a parsed command line.
    pub fn take(args: &mut Args) -> Result<Self, ArgError> {
        Ok(Self {
            threads: args.opt_parse("threads", 0)?,
            trace: args.switch("trace"),
            models_dir: args.opt("models-dir"),
        })
    }
}

/// Consumes the shared inference-engine flags (`--engine
/// {recursive,flat,blocked}` and `--quantized`), resolving them into a
/// validated [`libra_infer::EngineOpts`]. The default is the blocked
/// exact engine — the serving default everywhere. Shared by `predict`,
/// `serve`, and `experiments inferbench` so engine selection reads
/// identically across the toolchain.
pub struct EngineOpts;

impl EngineOpts {
    /// Consumes `--engine` / `--quantized` from a parsed command line.
    pub fn take(args: &mut Args) -> Result<libra_infer::EngineOpts, ArgError> {
        let kind: libra_infer::EngineKind = match args.opt("engine") {
            None => libra_infer::EngineKind::default(),
            Some(v) => v.parse().map_err(|e| ArgError(format!("--engine: {e}")))?,
        };
        let quantized = args.switch("quantized");
        libra_infer::EngineOpts::new(kind, quantized).map_err(ArgError)
    }
}

/// A `--model` reference: either a file path or a registry
/// `name[@version]` spec. Resolution against the registry happens in
/// one place (`commands::load_model`); this type only carries the raw
/// reference so every subcommand consumes the flag identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRef(pub String);

impl ModelRef {
    /// Consumes the required `--model` flag.
    pub fn take(args: &mut Args) -> Result<Self, ArgError> {
        Ok(Self(args.req("model")?))
    }

    /// The raw reference text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positionals_then_flags() {
        let mut a = parse(&["dataset", "generate", "--plan", "main", "--seed", "7"]).unwrap();
        assert_eq!(a.positionals(), ["dataset", "generate"]);
        assert_eq!(a.req("plan").unwrap(), "main");
        assert_eq!(a.opt_parse::<u64>("seed", 0).unwrap(), 7);
        a.finish().unwrap();
    }

    #[test]
    fn switches_without_values() {
        let mut a = parse(&["info", "--verbose", "--out", "x.bin"]).unwrap();
        assert!(a.switch("verbose"));
        assert!(!a.switch("quiet"));
        assert_eq!(a.req("out").unwrap(), "x.bin");
        a.finish().unwrap();
    }

    #[test]
    fn missing_required_flag_errors() {
        let mut a = parse(&["train"]).unwrap();
        assert!(a.req("dataset").is_err());
    }

    #[test]
    fn unknown_flag_rejected_at_finish() {
        let mut a = parse(&["info", "--bogus", "1"]).unwrap();
        let _ = a.opt("known");
        assert!(a.finish().is_err());
    }

    #[test]
    fn duplicate_flag_rejected() {
        assert!(parse(&["x", "--a", "1", "--a", "2"]).is_err());
    }

    #[test]
    fn positional_after_flags_rejected() {
        assert!(parse(&["cmd", "--a", "1", "stray"]).is_err());
    }

    #[test]
    fn bad_parse_reports_flag() {
        let mut a = parse(&["x", "--seed", "abc"]).unwrap();
        let err = a.opt_parse::<u64>("seed", 0).unwrap_err();
        assert!(err.0.contains("--seed"));
    }

    #[test]
    fn common_opts_consume_shared_flags() {
        let mut a = parse(&["simulate", "--threads", "4", "--trace", "--models-dir", "m"]).unwrap();
        let c = CommonOpts::take(&mut a).unwrap();
        assert_eq!(c.threads, 4);
        assert!(c.trace);
        assert_eq!(c.models_dir.as_deref(), Some("m"));
        a.finish().unwrap();
    }

    #[test]
    fn common_opts_default_when_absent() {
        let mut a = parse(&["info"]).unwrap();
        let c = CommonOpts::take(&mut a).unwrap();
        assert_eq!(c.threads, 0);
        assert!(!c.trace);
        assert!(c.models_dir.is_none());
        a.finish().unwrap();
    }

    #[test]
    fn model_ref_takes_required_flag() {
        let mut a = parse(&["classify", "--model", "ba-forest@2"]).unwrap();
        assert_eq!(ModelRef::take(&mut a).unwrap().as_str(), "ba-forest@2");
        assert!(ModelRef::take(&mut parse(&["classify"]).unwrap()).is_err());
    }

    #[test]
    fn engine_opts_default_to_blocked_exact() {
        let mut a = parse(&["predict"]).unwrap();
        let e = EngineOpts::take(&mut a).unwrap();
        assert_eq!(e.kind, libra_infer::EngineKind::Blocked);
        assert!(!e.quantized);
        a.finish().unwrap();
    }

    #[test]
    fn engine_opts_parse_and_validate() {
        let mut a = parse(&["predict", "--engine", "flat"]).unwrap();
        assert_eq!(
            EngineOpts::take(&mut a).unwrap().kind,
            libra_infer::EngineKind::Flat
        );
        let mut a = parse(&["predict", "--engine", "blocked", "--quantized"]).unwrap();
        let e = EngineOpts::take(&mut a).unwrap();
        assert!(e.quantized);
        // Quantized tables exist only for the blocked engine.
        let mut a = parse(&["predict", "--engine", "flat", "--quantized"]).unwrap();
        assert!(EngineOpts::take(&mut a).is_err());
        // Unknown engines name the expected values.
        let mut a = parse(&["predict", "--engine", "warp"]).unwrap();
        let err = EngineOpts::take(&mut a).unwrap_err();
        assert!(err.0.contains("--engine"));
        assert!(err.0.contains("blocked"));
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // `-5` does not start with `--`, so it parses as a value.
        let mut a = parse(&["classify", "--tof-diff", "-5.5"]).unwrap();
        assert_eq!(a.opt_parse::<f64>("tof-diff", 0.0).unwrap(), -5.5);
    }
}
