//! End-to-end chaos storyline: faults fire, nothing panics, degraded
//! decisions fall back, the breach rolls `LATEST` back, the shadow
//! winner is promoted — and the whole run digests identically at any
//! thread/shard count.

use libra_guard::{run_chaos, ChaosConfig, LifecycleAction};
use libra_infer::ModelRegistry;
use libra_util::par::set_threads;
use std::path::PathBuf;

fn temp_registry(tag: &str) -> ModelRegistry {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("libra-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp registry");
    ModelRegistry::open(dir)
}

fn quick() -> ChaosConfig {
    ChaosConfig {
        requests_per_round: 600,
        ..ChaosConfig::default()
    }
}

#[test]
fn storyline_rolls_back_then_promotes() {
    let registry = temp_registry("storyline");
    let outcome = run_chaos(&quick(), &registry, "guarded").expect("chaos run");

    // Storm rounds breach, rollback lands at the first storm round.
    assert_eq!(outcome.rollback_round, Some(1));
    assert_eq!(outcome.decisions_to_rollback, Some(1_200));
    let rollback = &outcome.rounds[1];
    assert_eq!(
        rollback.action,
        LifecycleAction::Rollback { from: 2, to: 1 }
    );
    assert!(
        rollback.degraded_per_mille > 300,
        "storm only degraded {}‰",
        rollback.degraded_per_mille
    );
    assert!(rollback.max_psi > 0.25, "storm PSI {}", rollback.max_psi);
    assert!(rollback.deadline_misses > 0 && rollback.drops > 0);

    // Second storm round: reads still faulted, no trusted prior → hold.
    assert_eq!(outcome.rounds[2].action, LifecycleAction::Hold);
    assert_eq!(outcome.rounds[2].served_version, 2);
    assert_eq!(outcome.artifact_faults, 2);

    // Calm round recovers the rolled-back version from the registry.
    assert_eq!(outcome.rounds[3].served_version, 1);
    assert_eq!(outcome.rounds[3].degraded, 0);
    assert!(outcome.rounds[3].max_psi < 0.1);

    // Shadow round promotes the staged clone; the run ends on it.
    assert_eq!(outcome.promote_round, Some(4));
    assert_eq!(
        outcome.rounds[4].action,
        LifecycleAction::Promote { from: 1, to: 3 }
    );
    assert_eq!(outcome.rounds[5].served_version, 3);
    assert_eq!(outcome.final_latest, 3);
    assert_eq!(registry.latest("guarded").expect("latest"), Some(3));

    // Quiet rounds never degrade; totals reconcile.
    for round in [0usize, 3, 4, 5] {
        assert_eq!(outcome.rounds[round].degraded, 0, "round {round}");
    }
    assert_eq!(outcome.decisions, 6 * 600);
    let degraded: u64 = outcome.rounds.iter().map(|r| r.degraded).sum();
    assert_eq!(outcome.degraded, degraded);
    assert_eq!(outcome.events.len(), 6);
}

#[test]
fn digest_is_thread_and_shard_invariant() {
    let narrow = {
        let registry = temp_registry("narrow");
        set_threads(1);
        let cfg = ChaosConfig {
            shards: 1,
            ..quick()
        };
        run_chaos(&cfg, &registry, "guarded").expect("narrow run")
    };
    let wide = {
        let registry = temp_registry("wide");
        set_threads(8);
        let cfg = ChaosConfig {
            shards: 8,
            ..quick()
        };
        run_chaos(&cfg, &registry, "guarded").expect("wide run")
    };
    set_threads(0);

    assert_eq!(
        narrow.digest, wide.digest,
        "chaos digest must not depend on parallelism"
    );
    assert_eq!(narrow.decisions, wide.decisions);
    assert_eq!(narrow.degraded, wide.degraded);
    assert_eq!(narrow.deadline_misses, wide.deadline_misses);
    assert_eq!(narrow.drops, wide.drops);
    assert_eq!(narrow.rollback_round, wide.rollback_round);
    assert_eq!(narrow.promote_round, wide.promote_round);
    for (a, b) in narrow.rounds.iter().zip(&wide.rounds) {
        assert_eq!(a.digest, b.digest, "round {} digest", a.round);
        assert_eq!(a.degraded, b.degraded, "round {} degraded", a.round);
        assert_eq!(a.action, b.action, "round {} action", a.round);
    }
}
