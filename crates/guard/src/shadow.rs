//! Shadow evaluation: the candidate decides, the live answer ships.
//!
//! A candidate `name@vNext` is evaluated on *mirrored* requests — the
//! exact stream the live model just served — through the same columnar
//! batch path serving uses. Its decisions are compared against the live
//! responses and then discarded; nothing a shadow evaluation does can
//! reach a station. Comparison is restricted to requests the live model
//! actually decided: gated (missing-ACK) requests bypass any model by
//! design, and degraded responses carry the fallback rule's answer, not
//! the live model's, so neither says anything about either model.
//!
//! The agreement rate feeds the promotion gate in
//! [`crate::lifecycle::Thresholds`]: a candidate that cannot even agree
//! with the incumbent on the easy traffic has no business going live
//! without an offline regret evaluation first.

use libra_dataset::{Action3, FEATURE_NAMES};
use libra_ml::Classifier;
use libra_obs as obs;
use libra_serve::{DecisionRequest, DecisionResponse, ServedModel};
use libra_util::frame::FeatureFrame;

/// Outcome of one shadow evaluation window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowReport {
    /// Version of the candidate that was shadowed.
    pub candidate_version: u32,
    /// Model-decided live responses the candidate was compared on.
    pub compared: u64,
    /// Comparisons where candidate and live chose the same action.
    pub agreed: u64,
    /// Confusion counts: `matrix[live][candidate]` in BA/RA/NA class
    /// order (diagonal = agreement).
    pub matrix: [[u64; 3]; 3],
}

impl ShadowReport {
    /// Agreement rate in per mille (1000 when nothing was compared —
    /// no evidence of disagreement is not a veto).
    pub fn agreement_per_mille(&self) -> u64 {
        (self.agreed * 1000)
            .checked_div(self.compared)
            .unwrap_or(1000)
    }
}

fn class_action(class: usize) -> Action3 {
    match class {
        0 => Action3::Ba,
        1 => Action3::Ra,
        _ => Action3::Na,
    }
}

/// Runs `candidate` over the mirrored `requests` and compares its
/// decisions with the `live` responses (both in `seq` order, as
/// `DecisionService::finish` returns them). Counters
/// `guard.shadow.compared` / `guard.shadow.agreed` record the window.
pub fn shadow_eval(
    candidate: &ServedModel,
    requests: &[DecisionRequest],
    live: &[DecisionResponse],
) -> ShadowReport {
    assert_eq!(
        requests.len(),
        live.len(),
        "shadow window needs the full request/response pairing"
    );
    let names: Vec<String> = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    let mut frame = FeatureFrame::with_schema(3, names);
    let mut live_actions = Vec::new();
    for (request, response) in requests.iter().zip(live) {
        debug_assert_eq!(request.seq, response.seq, "mirror out of order");
        if response.gated || response.degraded {
            continue;
        }
        frame.push_row(&request.features.to_row(), 0);
        live_actions.push(response.action);
    }

    let mut classes = Vec::with_capacity(live_actions.len());
    if !live_actions.is_empty() {
        candidate
            .classifier
            .predict_batch_into(&frame.view(), &mut classes);
    }

    let mut matrix = [[0u64; 3]; 3];
    let mut agreed = 0u64;
    for (&live_action, &class) in live_actions.iter().zip(&classes) {
        let shadow_action = class_action(class);
        matrix[live_action.class_index()][shadow_action.class_index()] += 1;
        if shadow_action == live_action {
            agreed += 1;
        }
    }
    let compared = live_actions.len() as u64;
    obs::counter("guard.shadow.compared", compared);
    obs::counter("guard.shadow.agreed", agreed);
    ShadowReport {
        candidate_version: candidate.version,
        compared,
        agreed,
        matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra::LibraClassifier;
    use libra_serve::{generate_requests, serve_all, LoadConfig, ServeConfig};
    use libra_util::rng::rng_from_seed;
    use std::sync::Arc;

    fn model(version: u32, train_seed: u64) -> Arc<ServedModel> {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60usize {
            let c = i % 3;
            let mut row = vec![0.0; FEATURE_NAMES.len()];
            row[0] = c as f64 * 8.0 + (i % 5) as f64 * 0.1;
            row[5] = 1.0 - c as f64 * 0.3;
            features.push(row);
            labels.push(c);
        }
        let names = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        let data = libra_ml::Dataset::new(features, labels, 3, names);
        let mut rng = rng_from_seed(train_seed);
        let clf = LibraClassifier::train(&data, &mut rng);
        Arc::new(ServedModel::new("shadow-test", version, clf))
    }

    fn window(n: usize) -> Vec<DecisionRequest> {
        generate_requests(&LoadConfig {
            requests: n,
            stations: 16,
            seed: 0x5AD0,
        })
    }

    #[test]
    fn identical_candidate_agrees_everywhere() {
        let live = model(1, 7);
        let requests = window(800);
        let outcome = serve_all(&ServeConfig::default(), Arc::clone(&live), &requests);
        let report = shadow_eval(&model(2, 7), &requests, &outcome.responses);
        assert_eq!(report.candidate_version, 2);
        assert_eq!(report.agreement_per_mille(), 1000);
        assert_eq!(report.agreed, report.compared);
        // Gated requests are excluded from comparison.
        let gated = outcome.responses.iter().filter(|r| r.gated).count() as u64;
        assert_eq!(report.compared + gated, requests.len() as u64);
        // The confusion matrix diagonal carries every comparison.
        let diag: u64 = (0..3).map(|i| report.matrix[i][i]).sum();
        assert_eq!(diag, report.compared);
    }

    #[test]
    fn different_candidate_is_measured_not_served() {
        let live = model(1, 7);
        let requests = window(800);
        let outcome = serve_all(&ServeConfig::default(), Arc::clone(&live), &requests);
        let digest_before = libra_serve::response_digest(&outcome.responses);
        let report = shadow_eval(&model(2, 99), &requests, &outcome.responses);
        // Shadowing never mutates the served responses.
        assert_eq!(
            libra_serve::response_digest(&outcome.responses),
            digest_before
        );
        assert!(report.compared > 0);
        let off_diag: u64 = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .filter(|&(i, j)| i != j)
            .map(|(i, j)| report.matrix[i][j])
            .sum();
        assert_eq!(report.compared - report.agreed, off_diag);
    }

    #[test]
    fn empty_window_is_not_a_veto() {
        let report = shadow_eval(&model(3, 7), &[], &[]);
        assert_eq!(report.compared, 0);
        assert_eq!(report.agreement_per_mille(), 1000);
    }
}
