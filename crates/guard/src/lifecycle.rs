//! The guarded model lifecycle: hold, promote, or roll back.
//!
//! A [`LifecycleController`] sits beside the serving loop and, once per
//! observation window, turns three health signals into at most one
//! registry motion:
//!
//! * **degradation rate** — the fraction of the window's decisions the
//!   serve path had to answer with the §7 fallback (deadline misses,
//!   dropped responses, a schema-broken model). Breaching
//!   [`Thresholds::max_degraded_per_mille`] triggers an automatic
//!   rollback of `LATEST` to the prior version.
//! * **drift** — the max per-feature PSI versus the baseline window
//!   ([`crate::drift`]). Drift does not trigger motion by itself, but it
//!   vetoes promotion: a candidate that only matched the incumbent on a
//!   distribution the traffic has left is unproven.
//! * **shadow agreement** — a [`crate::shadow::ShadowReport`] for a
//!   newer candidate version. A candidate that agrees at or above
//!   [`Thresholds::min_agreement_per_mille`] on a stable window is
//!   promoted to `LATEST`.
//!
//! All registry motion goes through the crash-safe
//! [`ModelRegistry::repoint_latest`], so a crash mid-decision can tear
//! neither the pointer nor an artifact. A version rolled back from is
//! distrusted: it does not become the rollback target of the next
//! breach, which keeps a flapping model from ping-ponging.

use crate::shadow::ShadowReport;
use libra_infer::{Error, ModelRegistry, ModelSpec};
use libra_obs as obs;

/// Gates for lifecycle decisions. Defaults: act only on windows of at
/// least 200 decisions, roll back above 150 ‰ degradation, promote at
/// ≥ 900 ‰ shadow agreement when max PSI ≤ 0.25.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Degradation rate (per mille) above which `LATEST` rolls back.
    pub max_degraded_per_mille: u64,
    /// Shadow agreement (per mille) a candidate needs to be promoted.
    pub min_agreement_per_mille: u64,
    /// Max per-feature PSI versus baseline above which promotion waits.
    pub max_psi: f64,
    /// Minimum decisions in a window before any action is taken.
    pub min_window: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            max_degraded_per_mille: 150,
            min_agreement_per_mille: 900,
            max_psi: 0.25,
            min_window: 200,
        }
    }
}

/// What the controller did with a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleAction {
    /// No registry motion.
    Hold,
    /// `LATEST` advanced to a shadow-proven candidate.
    Promote {
        /// Version that was live before the promotion.
        from: u32,
        /// Candidate version now live.
        to: u32,
    },
    /// `LATEST` rolled back to the prior version.
    Rollback {
        /// Version that was live when the breach was detected.
        from: u32,
        /// Prior version now live again.
        to: u32,
    },
}

/// One window's assessment, as recorded in the controller's log.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleEvent {
    /// 0-based index of the assessed window.
    pub round: u64,
    /// The action taken (already applied to the registry).
    pub action: LifecycleAction,
    /// Human-readable cause, e.g. `degradation 475‰ > 150‰`.
    pub reason: String,
    /// The window's degradation rate, per mille.
    pub degraded_per_mille: u64,
    /// The window's max per-feature PSI versus baseline.
    pub max_psi: f64,
    /// Shadow agreement per mille, when a candidate was under test.
    pub shadow_agreement_per_mille: Option<u64>,
}

/// Drives promotion and rollback for one registry name.
pub struct LifecycleController {
    registry: ModelRegistry,
    name: String,
    thresholds: Thresholds,
    live: u32,
    prior: Option<u32>,
    round: u64,
    events: Vec<LifecycleEvent>,
}

impl LifecycleController {
    /// Opens a controller over `name`, reading the live version from the
    /// registry's `LATEST` pointer and taking the highest on-disk
    /// version below it as the rollback target.
    pub fn new(registry: ModelRegistry, name: &str, thresholds: Thresholds) -> Result<Self, Error> {
        let (live, _) = registry.resolve(&ModelSpec {
            name: name.to_string(),
            version: None,
        })?;
        let prior = registry.versions(name)?.into_iter().rfind(|&v| v < live);
        Ok(Self {
            registry,
            name: name.to_string(),
            thresholds,
            live,
            prior,
            round: 0,
            events: Vec::new(),
        })
    }

    /// The version currently considered live.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// The version a breach would roll back to, if any.
    pub fn prior(&self) -> Option<u32> {
        self.prior
    }

    /// Every assessment so far, in round order.
    pub fn events(&self) -> &[LifecycleEvent] {
        &self.events
    }

    /// Assesses one observation window and applies at most one registry
    /// motion. `decisions` / `degraded_per_mille` summarize the served
    /// window, `max_psi` scores it against the baseline, and `shadow`
    /// carries a candidate's mirrored-traffic evaluation when one is
    /// staged. Returns the recorded event; errors only if the registry
    /// refuses the motion (e.g. the target artifact vanished).
    pub fn assess(
        &mut self,
        decisions: u64,
        degraded_per_mille: u64,
        max_psi: f64,
        shadow: Option<&ShadowReport>,
    ) -> Result<&LifecycleEvent, Error> {
        let round = self.round;
        self.round += 1;
        let agreement = shadow.map(ShadowReport::agreement_per_mille);
        let (action, reason) = self.decide(decisions, degraded_per_mille, max_psi, shadow)?;
        match action {
            LifecycleAction::Hold => obs::counter("guard.lifecycle.hold", 1),
            LifecycleAction::Promote { .. } => obs::counter("guard.lifecycle.promote", 1),
            LifecycleAction::Rollback { .. } => obs::counter("guard.lifecycle.rollback", 1),
        }
        self.events.push(LifecycleEvent {
            round,
            action,
            reason,
            degraded_per_mille,
            max_psi,
            shadow_agreement_per_mille: agreement,
        });
        Ok(self.events.last().expect("just pushed"))
    }

    fn decide(
        &mut self,
        decisions: u64,
        degraded_per_mille: u64,
        max_psi: f64,
        shadow: Option<&ShadowReport>,
    ) -> Result<(LifecycleAction, String), Error> {
        let t = self.thresholds;
        if decisions < t.min_window {
            return Ok((
                LifecycleAction::Hold,
                format!("window {decisions} < {} decisions", t.min_window),
            ));
        }
        if degraded_per_mille > t.max_degraded_per_mille {
            return match self.prior {
                Some(prior) => {
                    self.registry.repoint_latest(&self.name, prior)?;
                    let from = self.live;
                    self.live = prior;
                    // The rolled-back-from version is distrusted: it must
                    // not become the next breach's rollback target.
                    self.prior = None;
                    Ok((
                        LifecycleAction::Rollback { from, to: prior },
                        format!(
                            "degradation {degraded_per_mille}\u{2030} > {}\u{2030}",
                            t.max_degraded_per_mille
                        ),
                    ))
                }
                None => Ok((
                    LifecycleAction::Hold,
                    format!(
                        "degradation {degraded_per_mille}\u{2030} breached but no prior version"
                    ),
                )),
            };
        }
        if let Some(report) = shadow {
            let candidate = report.candidate_version;
            if candidate > self.live {
                let agreement = report.agreement_per_mille();
                if agreement < t.min_agreement_per_mille {
                    return Ok((
                        LifecycleAction::Hold,
                        format!(
                            "candidate v{candidate} agreement {agreement}\u{2030} < {}\u{2030}",
                            t.min_agreement_per_mille
                        ),
                    ));
                }
                if max_psi > t.max_psi {
                    return Ok((
                        LifecycleAction::Hold,
                        format!(
                            "candidate v{candidate} blocked: drift PSI {max_psi:.3} > {:.3}",
                            t.max_psi
                        ),
                    ));
                }
                self.registry.repoint_latest(&self.name, candidate)?;
                let from = self.live;
                self.prior = Some(from);
                self.live = candidate;
                return Ok((
                    LifecycleAction::Promote {
                        from,
                        to: candidate,
                    },
                    format!(
                        "candidate v{candidate} agreement {agreement}\u{2030}, PSI {max_psi:.3}"
                    ),
                ));
            }
        }
        Ok((LifecycleAction::Hold, "healthy".to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra::LibraClassifier;
    use libra_dataset::FEATURE_NAMES;
    use libra_util::rng::rng_from_seed;
    use std::path::PathBuf;

    fn root_of(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("libra-lifecycle-{tag}-{}", std::process::id()))
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = root_of(tag);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp registry");
        dir
    }

    fn trained(seed: u64) -> LibraClassifier {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60usize {
            let c = i % 3;
            let mut row = vec![0.0; FEATURE_NAMES.len()];
            row[0] = c as f64 * 8.0 + (i % 5) as f64 * 0.1;
            row[5] = 1.0 - c as f64 * 0.3;
            features.push(row);
            labels.push(c);
        }
        let names = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
        let data = libra_ml::Dataset::new(features, labels, 3, names);
        LibraClassifier::train(&data, &mut rng_from_seed(seed))
    }

    fn agree_report(candidate_version: u32, agreed: u64, compared: u64) -> ShadowReport {
        ShadowReport {
            candidate_version,
            compared,
            agreed,
            matrix: [[agreed, compared - agreed, 0], [0, 0, 0], [0, 0, 0]],
        }
    }

    fn seeded_registry(tag: &str, versions: u64) -> ModelRegistry {
        let registry = ModelRegistry::open(temp_root(tag));
        let clf = trained(11);
        for v in 0..versions {
            let artifact = clf.to_artifact("guarded", 11 + v, 60, "lifecycle test");
            registry.save("guarded", &artifact).expect("publish");
        }
        registry
    }

    #[test]
    fn breach_rolls_back_and_does_not_ping_pong() {
        let registry = seeded_registry("breach", 2);
        let mut ctl =
            LifecycleController::new(registry, "guarded", Thresholds::default()).expect("open");
        assert_eq!(ctl.live(), 2);
        assert_eq!(ctl.prior(), Some(1));

        let event = ctl.assess(1_000, 400, 0.0, None).expect("assess").clone();
        assert_eq!(event.action, LifecycleAction::Rollback { from: 2, to: 1 });
        assert_eq!(ctl.live(), 1);
        let check = ModelRegistry::open(root_of("breach"));
        assert_eq!(check.latest("guarded").expect("latest"), Some(1));

        // A second breach has no trusted prior left: hold, not flap.
        let event = ctl.assess(1_000, 400, 0.0, None).expect("assess").clone();
        assert_eq!(event.action, LifecycleAction::Hold);
        assert_eq!(check.latest("guarded").expect("latest"), Some(1));
    }

    #[test]
    fn shadow_winner_is_promoted_only_on_a_stable_window() {
        let registry = seeded_registry("promote", 2);
        let mut ctl =
            LifecycleController::new(registry, "guarded", Thresholds::default()).expect("open");
        // Publish a candidate v3 behind the controller's back.
        let side = ModelRegistry::open(root_of("promote"));
        let artifact = trained(11).to_artifact("guarded", 13, 60, "candidate");
        side.save("guarded", &artifact).expect("publish v3");
        // LATEST moved by save; the controller still serves v2 and only
        // its own promote may bless the candidate.
        side.repoint_latest("guarded", 2).expect("repoint");

        // Drifted window: promotion is vetoed.
        let report = agree_report(3, 950, 1_000);
        let event = ctl.assess(1_000, 10, 0.8, Some(&report)).expect("assess");
        assert_eq!(event.action, LifecycleAction::Hold);
        assert_eq!(side.latest("guarded").expect("latest"), Some(2));

        // Weak agreement: promotion is refused.
        let weak = agree_report(3, 500, 1_000);
        let event = ctl.assess(1_000, 10, 0.0, Some(&weak)).expect("assess");
        assert_eq!(event.action, LifecycleAction::Hold);

        // Stable window, strong agreement: promoted.
        let event = ctl
            .assess(1_000, 10, 0.05, Some(&report))
            .expect("assess")
            .clone();
        assert_eq!(event.action, LifecycleAction::Promote { from: 2, to: 3 });
        assert_eq!(ctl.live(), 3);
        assert_eq!(ctl.prior(), Some(2));
        assert_eq!(side.latest("guarded").expect("latest"), Some(3));
    }

    #[test]
    fn small_windows_and_stale_candidates_hold() {
        let registry = seeded_registry("hold", 2);
        let mut ctl =
            LifecycleController::new(registry, "guarded", Thresholds::default()).expect("open");
        // Tiny window: even a breach-level rate holds.
        let event = ctl.assess(50, 900, 0.0, None).expect("assess").clone();
        assert_eq!(event.action, LifecycleAction::Hold);
        // A shadow report for an old version is not a candidate.
        let stale = agree_report(1, 1_000, 1_000);
        let event = ctl.assess(1_000, 10, 0.0, Some(&stale)).expect("assess");
        assert_eq!(event.action, LifecycleAction::Hold);
        assert_eq!(ctl.live(), 2);
        assert_eq!(ctl.events().len(), 2);
    }
}
