//! # libra-guard
//!
//! Deterministic fault injection and model-lifecycle guardrails for the
//! LiBRA serving stack (ROADMAP item 4): the layer that turns "a model
//! is served" into "a model is served *under supervision*, degraded
//! gracefully when the world misbehaves, and replaced automatically
//! when it stops earning its place".
//!
//! * [`plan`] — the seeded [`FaultPlan`]: one top-level seed fans out,
//!   via derived RNG streams under the `libra_util::par` contract, into
//!   the registry's artifact read faults (`libra_infer::ArtifactFault`)
//!   and the serve path's latency spikes, response drops, deadline
//!   misses and shard stalls (`libra_serve::ServeFaults`). Every
//!   digest-affecting fault is a pure function of the faulted
//!   operation's identity (request `seq`, model `(name, version)`), so
//!   chaos runs stay bitwise reproducible at any thread/shard count.
//! * [`drift`] — PSI-style drift scoring over `obs` value histograms:
//!   request feature distributions are folded into per-feature
//!   histograms and compared against a baseline window.
//! * [`shadow`] — shadow evaluation of a candidate `name@vNext` on
//!   mirrored requests: the candidate decides every request the live
//!   model served, decisions are *compared but never served*.
//! * [`lifecycle`] — the guarded-lifecycle controller: promotes the
//!   candidate when it wins its shadow evaluation, rolls the registry
//!   back to the prior `LATEST` when the live model's degradation rate
//!   breaches its threshold; all registry motion goes through the
//!   crash-safe `ModelRegistry::repoint_latest`.
//! * [`chaos`] — the end-to-end chaos harness behind `libractl chaos`
//!   and `experiments chaos`: a multi-round serve under an armed fault
//!   plan, with drift scoring, shadow evaluation, a forced breach, the
//!   automatic rollback, and a later promotion — emitting one response
//!   digest that must be bitwise identical at any thread/shard count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod drift;
pub mod lifecycle;
pub mod plan;
pub mod shadow;

pub use chaos::{chaos_artifact, run_chaos, ChaosConfig, ChaosOutcome, RoundStats};
pub use drift::{feature_drift, psi, record_features, DriftReport, FEATURE_HIST_NAMES};
pub use lifecycle::{LifecycleAction, LifecycleController, LifecycleEvent, Thresholds};
pub use plan::FaultPlan;
pub use shadow::{shadow_eval, ShadowReport};
