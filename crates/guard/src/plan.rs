//! The seeded fault plan: one seed, every fault stream derived.
//!
//! A [`FaultPlan`] is the single knob a chaos run turns. It owns the
//! *rates* (all per mille) and the master seed; the concrete fault
//! configurations for each subsystem are derived from it with labeled
//! seed derivation, so the registry's read faults and the serve path's
//! lotteries draw from independent streams that never interfere — and
//! the whole plan stays a pure function of `seed`, bitwise reproducible
//! under the `par` contract at any thread count.

use libra_infer::ArtifactFault;
use libra_serve::ServeFaults;
use libra_util::rng::derive_seed;

/// Everything a chaos run may break, in one seeded bundle.
///
/// `Default` is the all-quiet plan: every rate zero, no deadline, no
/// stall — arming it changes nothing, which is what the zero-cost
/// contract of the hooks requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Master seed; every subsystem stream derives from it.
    pub seed: u64,
    /// Per-mille probability an artifact load sees a flipped byte.
    pub artifact_corrupt_per_mille: u16,
    /// Per-mille probability an artifact load sees a truncated file.
    pub artifact_truncate_per_mille: u16,
    /// Virtual latency of an unspiked decision, µs.
    pub base_latency_us: u32,
    /// Per-mille probability a decision's virtual latency spikes.
    pub spike_per_mille: u16,
    /// Virtual latency of a spiked decision, µs.
    pub spike_latency_us: u32,
    /// Per-decision deadline, µs (0 disables).
    pub deadline_us: u32,
    /// Per-mille probability a model answer is dropped.
    pub drop_per_mille: u16,
    /// Serve shard stalled after every batch, if any.
    pub stall_shard: Option<u32>,
    /// Real wall-clock stall per batch on the stalled shard, ms.
    pub stall_ms: u32,
}

impl FaultPlan {
    /// The registry-side fault configuration (own derived stream).
    pub fn artifact_fault(&self) -> ArtifactFault {
        ArtifactFault {
            seed: derive_seed(self.seed, "guard.artifact"),
            corrupt_per_mille: self.artifact_corrupt_per_mille,
            truncate_per_mille: self.artifact_truncate_per_mille,
        }
    }

    /// The serve-side fault configuration (own derived stream).
    pub fn serve_faults(&self) -> ServeFaults {
        ServeFaults {
            seed: derive_seed(self.seed, "guard.serve"),
            base_latency_us: self.base_latency_us,
            spike_per_mille: self.spike_per_mille,
            spike_latency_us: self.spike_latency_us,
            deadline_us: self.deadline_us,
            drop_per_mille: self.drop_per_mille,
            stall_shard: self.stall_shard,
            stall_ms: self.stall_ms,
        }
    }

    /// True when no fault can ever fire (deadlines included).
    pub fn is_quiet(&self) -> bool {
        self.artifact_corrupt_per_mille == 0
            && self.artifact_truncate_per_mille == 0
            && self.spike_per_mille == 0
            && self.deadline_us == 0
            && self.drop_per_mille == 0
            && self.stall_shard.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_streams_differ_but_are_stable() {
        let plan = FaultPlan {
            seed: 0xC405,
            ..Default::default()
        };
        assert_ne!(plan.artifact_fault().seed, plan.serve_faults().seed);
        assert_eq!(plan.artifact_fault(), plan.artifact_fault());
        assert_eq!(plan.serve_faults(), plan.serve_faults());
        // Different master seeds → different derived streams.
        let other = FaultPlan {
            seed: 0xC406,
            ..Default::default()
        };
        assert_ne!(plan.artifact_fault().seed, other.artifact_fault().seed);
    }

    #[test]
    fn quiet_plan_is_quiet() {
        assert!(FaultPlan::default().is_quiet());
        assert!(!FaultPlan {
            drop_per_mille: 1,
            ..Default::default()
        }
        .is_quiet());
        assert!(!FaultPlan {
            deadline_us: 10,
            ..Default::default()
        }
        .is_quiet());
    }
}
