//! PSI-style drift detection over `obs` value histograms.
//!
//! The serving stack already funnels deterministic observations through
//! `libra_obs`; drift detection rides the same spine. Each request's
//! Table-3 feature vector is quantized into a fixed per-feature linear
//! bin (32 bins across the feature's operating range) and recorded into
//! a per-feature `obs` value histogram via [`record_features`]. The
//! recorded value is `1 << bin`, which lands each linear bin in its own
//! log₂ bucket — so the coarse log₂ histogram carries the full linear
//! resolution, stays part of the deterministic digest, and merges
//! across threads in the usual index-ordered way.
//!
//! Two windows (a baseline [`libra_obs::Report`] and a current one) are
//! then compared per feature with the Population Stability Index:
//!
//! ```text
//! PSI = Σ_bins (p_i − q_i) · ln(p_i / q_i)
//! ```
//!
//! with ε-smoothed bin probabilities. The usual operating points apply:
//! PSI < 0.1 stable, 0.1–0.25 moderate shift, > 0.25 major shift (the
//! default promotion gate in [`crate::lifecycle::Thresholds`]).

use libra_dataset::Features;
use libra_obs::{Hist, Report, N_BUCKETS};

/// Linear bins per feature histogram.
const BINS: u64 = 32;

/// `obs` histogram names for the seven Table-3 features, in order.
pub const FEATURE_HIST_NAMES: [&str; 7] = [
    "guard.feature.snr_diff_db",
    "guard.feature.tof_diff_ns",
    "guard.feature.noise_diff_db",
    "guard.feature.pdp_similarity",
    "guard.feature.csi_similarity",
    "guard.feature.cdr",
    "guard.feature.initial_mcs",
];

/// Operating range `(lo, hi)` of each feature, Table-3 order — the
/// bracket the load generator and the §8 campaigns actually produce.
/// Values outside clamp into the edge bins (which is itself signal).
const FEATURE_RANGES: [(f64, f64); 7] = [
    (-5.0, 25.0),     // SNR difference, dB
    (-100.0, 1000.0), // ToF difference, ns (sentinel lands in the top bin)
    (-2.0, 2.0),      // noise level difference, dB
    (0.5, 1.0),       // PDP similarity
    (0.3, 1.0),       // CSI similarity
    (0.0, 1.0),       // CDR
    (0.0, 9.0),       // initial MCS
];

fn bin_of(value: f64, lo: f64, hi: f64) -> u64 {
    let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * BINS as f64) as u64).min(BINS - 1)
}

/// Records one request's feature vector into the current `obs` scope's
/// per-feature drift histograms (no-op when collection is disabled).
pub fn record_features(features: &Features) {
    let values = [
        features.snr_diff_db,
        features.tof_diff_ns,
        features.noise_diff_db,
        features.pdp_similarity,
        features.csi_similarity,
        features.cdr,
        features.initial_mcs as f64,
    ];
    for ((&name, value), (lo, hi)) in FEATURE_HIST_NAMES.iter().zip(values).zip(FEATURE_RANGES) {
        libra_obs::record_value(name, 1u64 << bin_of(value, lo, hi));
    }
}

/// Population Stability Index between two histograms sharing a binning.
///
/// Empty histograms score 0 (no evidence is not drift). Probabilities
/// are ε-smoothed so a bin emptying out entirely stays finite.
pub fn psi(reference: &Hist, current: &Hist) -> f64 {
    if reference.count == 0 || current.count == 0 {
        return 0.0;
    }
    const EPS: f64 = 1e-4;
    let mut score = 0.0;
    for i in 0..N_BUCKETS {
        let p = (reference.buckets[i] as f64 / reference.count as f64) + EPS;
        let q = (current.buckets[i] as f64 / current.count as f64) + EPS;
        score += (p - q) * (p / q).ln();
    }
    score
}

/// Per-feature PSI scores between two observation windows.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// `(histogram name, PSI)` for every feature histogram present in
    /// either window, Table-3 order.
    pub per_feature: Vec<(&'static str, f64)>,
    /// Largest per-feature PSI (0 when nothing was recorded).
    pub max_psi: f64,
}

impl DriftReport {
    /// True when the window pair breaches `threshold` on any feature.
    pub fn drifted(&self, threshold: f64) -> bool {
        self.max_psi > threshold
    }
}

/// Scores the current window's feature histograms against a baseline
/// window's — the drift half of the guarded lifecycle.
pub fn feature_drift(baseline: &Report, current: &Report) -> DriftReport {
    let mut per_feature = Vec::with_capacity(FEATURE_HIST_NAMES.len());
    let mut max_psi = 0.0f64;
    for name in FEATURE_HIST_NAMES {
        let empty = Hist::default();
        let reference = baseline.hist(name).unwrap_or(&empty);
        let now = current.hist(name).unwrap_or(&empty);
        let score = psi(reference, now);
        max_psi = max_psi.max(score);
        per_feature.push((name, score));
    }
    DriftReport {
        per_feature,
        max_psi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_obs as obs;

    fn window(shift_db: f64, n: usize) -> Report {
        let ((), report) = obs::with_scope(|| {
            for i in 0..n {
                let features = Features {
                    snr_diff_db: (i % 20) as f64 - 2.0 + shift_db,
                    tof_diff_ns: (i % 7) as f64 * 40.0,
                    noise_diff_db: 0.1,
                    pdp_similarity: 0.9,
                    csi_similarity: 0.8,
                    cdr: 0.95,
                    initial_mcs: i % 9,
                };
                record_features(&features);
            }
        });
        report
    }

    #[test]
    fn identical_windows_score_zero() {
        let a = window(0.0, 2_000);
        let b = window(0.0, 2_000);
        let report = feature_drift(&a, &b);
        assert!(report.max_psi < 0.01, "max_psi {}", report.max_psi);
        assert!(!report.drifted(0.25));
        assert_eq!(report.per_feature.len(), FEATURE_HIST_NAMES.len());
    }

    #[test]
    fn shifted_snr_is_flagged_on_the_snr_feature_only() {
        let a = window(0.0, 2_000);
        let b = window(8.0, 2_000);
        let report = feature_drift(&a, &b);
        assert!(report.drifted(0.25), "max_psi {}", report.max_psi);
        let (snr_name, snr_score) = report.per_feature[0];
        assert_eq!(snr_name, FEATURE_HIST_NAMES[0]);
        assert!(snr_score > 0.25, "snr psi {snr_score}");
        for &(name, score) in &report.per_feature[1..] {
            assert!(score < 0.05, "{name} drifted spuriously ({score})");
        }
    }

    #[test]
    fn empty_windows_are_not_drift() {
        let a = window(0.0, 1_000);
        let empty = Report::default();
        assert_eq!(feature_drift(&a, &empty).max_psi, 0.0);
        assert_eq!(feature_drift(&empty, &a).max_psi, 0.0);
        assert_eq!(psi(&Hist::default(), &Hist::default()), 0.0);
    }

    #[test]
    fn psi_is_roughly_symmetric_in_magnitude() {
        let a = window(0.0, 2_000);
        let b = window(5.0, 2_000);
        let ab = feature_drift(&a, &b).max_psi;
        let ba = feature_drift(&b, &a).max_psi;
        // PSI is symmetric by construction: (p−q)ln(p/q) = (q−p)ln(q/p).
        assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn bins_cover_the_range_without_panicking() {
        for v in [-1e9, -5.0, 0.0, 24.9, 25.0, 1e9, f64::NAN] {
            let b = bin_of(v, -5.0, 25.0);
            assert!(b < BINS);
        }
    }
}
