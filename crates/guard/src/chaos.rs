//! The end-to-end chaos harness behind `libractl chaos`.
//!
//! One [`run_chaos`] call drives a fixed six-round storyline through a
//! real registry, a real sharded serve, and a real
//! [`LifecycleController`] — everything the guarded lifecycle promises,
//! exercised in order:
//!
//! | round | label    | what happens                                            |
//! |-------|----------|---------------------------------------------------------|
//! | 0     | baseline | quiet serve on `v2`; feature histograms become baseline |
//! | 1     | storm    | armed fault plan + drifted traffic; degradation breaches the threshold → automatic rollback `v2 → v1` |
//! | 2     | storm    | still stormy; reads stay faulted, no trusted prior left → anti-flap hold |
//! | 3     | calm     | clean reads again; the serve path picks up the rolled-back `v1` |
//! | 4     | shadow   | candidate `v3` staged, shadow-evaluated on mirrored traffic → promotion `v1 → v3` |
//! | 5     | steady   | quiet serve on the promoted `v3`                        |
//!
//! During storm rounds every artifact read is mangled by the plan's
//! [`FaultPlan::artifact_fault`] stream, so the refresh path *fails
//! deterministically* and the service keeps serving its held model —
//! degraded, counted, never panicking. Every digest-affecting fault is
//! a pure function of request `seq` or model identity, so the outcome's
//! folded response digest is bitwise identical at any thread or shard
//! count; only wall-clock (the stalled shard's sleeps) varies.

use crate::drift::{feature_drift, record_features};
use crate::lifecycle::{LifecycleAction, LifecycleController, LifecycleEvent, Thresholds};
use crate::plan::FaultPlan;
use crate::shadow::shadow_eval;
use libra::LibraClassifier;
use libra_dataset::FEATURE_NAMES;
use libra_infer::{Error, ModelArtifact, ModelRegistry, ModelSpec};
use libra_obs as obs;
use libra_serve::{
    generate_requests, response_digest, serve_all, LoadConfig, ServeConfig, ServedModel,
};
use libra_util::rng::{derive_seed, derive_seed_index, rng_from_seed, SplitMix64};
use std::sync::Arc;

/// Round labels of the fixed storyline, in order.
const ROUND_LABELS: [&str; 6] = ["baseline", "storm", "storm", "calm", "shadow", "steady"];

/// SNR drift injected into storm-round traffic, dB.
const STORM_SNR_SHIFT_DB: f64 = -8.0;

/// Knobs of a chaos run. `Default` is the configuration the CI smoke
/// job and `experiments chaos` pin: 2 000 requests per round across 32
/// stations on 4 shards, default lifecycle thresholds, and a storm
/// plan whose drop + spike-past-deadline lotteries degrade ≈ 44 % of
/// decisions — far enough above the 150 ‰ rollback threshold that
/// sampling noise cannot flip the story.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Master seed; load, models, and every fault stream derive from it.
    pub seed: u64,
    /// Requests served per round.
    pub requests_per_round: usize,
    /// Station population (shard routing keys).
    pub stations: u64,
    /// Serve shard count — the outcome digest must not depend on it.
    pub shards: usize,
    /// Lifecycle gates.
    pub thresholds: Thresholds,
    /// Storm-round fault plan. Its `seed` field is ignored: the run
    /// derives the storm stream from [`ChaosConfig::seed`] so one knob
    /// reproduces everything.
    pub storm: FaultPlan,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC4A05,
            requests_per_round: 2_000,
            stations: 32,
            shards: 4,
            thresholds: Thresholds::default(),
            storm: FaultPlan {
                seed: 0,
                artifact_corrupt_per_mille: 1_000,
                artifact_truncate_per_mille: 0,
                base_latency_us: 80,
                spike_per_mille: 200,
                spike_latency_us: 9_000,
                deadline_us: 2_000,
                drop_per_mille: 300,
                stall_shard: Some(0),
                stall_ms: 1,
            },
        }
    }
}

/// One round's ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: u64,
    /// Storyline label (`baseline`, `storm`, …).
    pub label: &'static str,
    /// Model version the round was served by.
    pub served_version: u32,
    /// Decisions served.
    pub decisions: u64,
    /// Decisions answered by the §7 fallback under a fault.
    pub degraded: u64,
    /// Degradation rate, per mille.
    pub degraded_per_mille: u64,
    /// Injected deadline misses.
    pub deadline_misses: u64,
    /// Injected response drops.
    pub drops: u64,
    /// Batches after which the stalled shard slept.
    pub stalls: u64,
    /// Max per-feature PSI versus the baseline round.
    pub max_psi: f64,
    /// This round's response digest.
    pub digest: u64,
    /// What the controller did with the round.
    pub action: LifecycleAction,
}

/// The full run's ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosOutcome {
    /// Response digests of all rounds folded in round order — the
    /// bitwise thread/shard-invariance contract of the run.
    pub digest: u64,
    /// Total decisions served.
    pub decisions: u64,
    /// Total degraded decisions.
    pub degraded: u64,
    /// Total injected deadline misses.
    pub deadline_misses: u64,
    /// Total injected drops.
    pub drops: u64,
    /// Artifact loads the fault plan made fail (refresh attempts held).
    pub artifact_faults: u64,
    /// Round whose assessment rolled `LATEST` back, if any.
    pub rollback_round: Option<u64>,
    /// Decisions served before the rollback was applied, if any.
    pub decisions_to_rollback: Option<u64>,
    /// Round whose assessment promoted the candidate, if any.
    pub promote_round: Option<u64>,
    /// `LATEST` at the end of the run.
    pub final_latest: u32,
    /// Per-round ledgers, in order.
    pub rounds: Vec<RoundStats>,
    /// The controller's full event log.
    pub events: Vec<LifecycleEvent>,
}

/// Trains a small deterministic synthetic model and freezes it as a
/// registry artifact. Same `seed` → bitwise-identical forest, which is
/// how the harness stages a candidate guaranteed to agree with the
/// incumbent it clones.
pub fn chaos_artifact(seed: u64, name: &str) -> ModelArtifact {
    let mut mix = SplitMix64::new(derive_seed(seed, "chaos.data"));
    let rows = 240usize;
    let mut features = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);
    for i in 0..rows {
        let c = i % 3;
        let mut row = vec![0.0; FEATURE_NAMES.len()];
        row[0] = c as f64 * 8.0 + mix.uniform() * 2.0;
        row[3] = 0.6 + c as f64 * 0.12 + mix.uniform() * 0.05;
        row[5] = (1.0 - c as f64 * 0.3) + mix.uniform() * 0.05;
        row[6] = (i % 9) as f64;
        features.push(row);
        labels.push(c);
    }
    let names = FEATURE_NAMES.iter().map(|s| s.to_string()).collect();
    let data = libra_ml::Dataset::new(features, labels, 3, names);
    let mut rng = rng_from_seed(derive_seed(seed, "chaos.train"));
    let clf = LibraClassifier::train(&data, &mut rng);
    clf.to_artifact(name, seed, rows as u64, "chaos synthetic model")
}

fn latest_spec(name: &str) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        version: None,
    }
}

/// FNV-1a fold of one 64-bit word into a running digest.
fn fold_digest(acc: u64, value: u64) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = acc;
    for byte in value.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Runs the six-round chaos storyline against `registry`, publishing
/// `name@v1`/`v2` itself (the registry should start without `name`).
/// Returns the full ledger; errors only on registry motion the
/// storyline requires succeeding (publication, rollback, promotion).
pub fn run_chaos(
    cfg: &ChaosConfig,
    registry: &ModelRegistry,
    name: &str,
) -> Result<ChaosOutcome, Error> {
    registry.save(
        name,
        &chaos_artifact(derive_seed(cfg.seed, "chaos.model.v1"), name),
    )?;
    registry.save(
        name,
        &chaos_artifact(derive_seed(cfg.seed, "chaos.model.v2"), name),
    )?;

    let storm = FaultPlan {
        seed: derive_seed(cfg.seed, "chaos.storm"),
        ..cfg.storm
    };
    let quiet = FaultPlan::default();

    let mut controller =
        LifecycleController::new(ModelRegistry::open(registry.root()), name, cfg.thresholds)?;
    let (live_version, live_artifact) = registry.load(&latest_spec(name))?;
    let mut live = Arc::new(ServedModel::new(
        name,
        live_version,
        LibraClassifier::from_artifact(&live_artifact)?,
    ));

    let mut outcome = ChaosOutcome {
        digest: 0xcbf2_9ce4_8422_2325,
        decisions: 0,
        degraded: 0,
        deadline_misses: 0,
        drops: 0,
        artifact_faults: 0,
        rollback_round: None,
        decisions_to_rollback: None,
        promote_round: None,
        final_latest: 0,
        rounds: Vec::with_capacity(ROUND_LABELS.len()),
        events: Vec::new(),
    };
    let mut baseline: Option<obs::Report> = None;

    for (round, &label) in ROUND_LABELS.iter().enumerate() {
        let round = round as u64;
        let is_storm = label == "storm";
        let plan = if is_storm { storm } else { quiet };

        // Refresh through the (possibly faulted) artifact read path —
        // the watcher's view of the registry. A mangled read defers:
        // the held model keeps serving, nothing panics.
        let reader = ModelRegistry::open(registry.root()).with_read_fault(plan.artifact_fault());
        match reader.load(&latest_spec(name)) {
            Ok((version, artifact)) if version != live.version => {
                match LibraClassifier::from_artifact(&artifact) {
                    Ok(clf) => live = Arc::new(ServedModel::new(name, version, clf)),
                    Err(_) => {
                        outcome.artifact_faults += 1;
                        obs::counter("guard.chaos.artifact_fault", 1);
                    }
                }
            }
            Ok(_) => {}
            Err(_) => {
                outcome.artifact_faults += 1;
                obs::counter("guard.chaos.artifact_fault", 1);
            }
        }

        // The shadow round stages a candidate: published so it exists
        // on disk for promotion, but immediately un-blessed — only the
        // controller's own promote may move `LATEST` to it. Cloning the
        // incumbent's training seed guarantees it can win its shadow.
        let candidate = if label == "shadow" {
            let artifact = chaos_artifact(derive_seed(cfg.seed, "chaos.model.v1"), name);
            let staged = registry.save(name, &artifact)?;
            registry.repoint_latest(name, controller.live())?;
            Some(Arc::new(ServedModel::new(
                name,
                staged,
                LibraClassifier::from_artifact(&artifact)?,
            )))
        } else {
            None
        };

        let mut requests = generate_requests(&LoadConfig {
            requests: cfg.requests_per_round,
            stations: cfg.stations,
            seed: derive_seed_index(derive_seed(cfg.seed, "chaos.load"), round),
        });
        if is_storm {
            // The storm is also a distribution shift: every window's SNR
            // difference sags, which the drift detector must flag.
            for request in &mut requests {
                request.features.snr_diff_db += STORM_SNR_SHIFT_DB;
            }
        }

        let serve_cfg = ServeConfig {
            shards: cfg.shards,
            faults: is_storm.then(|| plan.serve_faults()),
            ..ServeConfig::default()
        };
        let ((served, shadow_report), report) = obs::with_scope(|| {
            for request in &requests {
                record_features(&request.features);
            }
            let served = serve_all(&serve_cfg, Arc::clone(&live), &requests);
            let shadow_report = candidate
                .as_ref()
                .map(|c| shadow_eval(c, &requests, &served.responses));
            (served, shadow_report)
        });

        let decisions = served.responses.len() as u64;
        let degraded = report.counter("serve.degraded");
        let degraded_per_mille = (degraded * 1000).checked_div(decisions).unwrap_or(0);
        let max_psi = match &baseline {
            Some(base) => feature_drift(base, &report).max_psi,
            None => 0.0,
        };
        if baseline.is_none() {
            baseline = Some(report.clone());
        }

        let event = controller
            .assess(
                decisions,
                degraded_per_mille,
                max_psi,
                shadow_report.as_ref(),
            )?
            .clone();
        let digest = response_digest(&served.responses);
        outcome.digest = fold_digest(outcome.digest, digest);
        outcome.decisions += decisions;
        outcome.degraded += degraded;
        outcome.deadline_misses += report.counter("serve.deadline_miss");
        outcome.drops += report.counter("serve.dropped");
        match event.action {
            LifecycleAction::Rollback { .. } => {
                outcome.rollback_round = Some(round);
                outcome.decisions_to_rollback = Some(outcome.decisions);
            }
            LifecycleAction::Promote { .. } => outcome.promote_round = Some(round),
            LifecycleAction::Hold => {}
        }
        outcome.rounds.push(RoundStats {
            round,
            label,
            served_version: live.version,
            decisions,
            degraded,
            degraded_per_mille,
            deadline_misses: report.counter("serve.deadline_miss"),
            drops: report.counter("serve.dropped"),
            stalls: report.counter("serve.stall"),
            max_psi,
            digest,
            action: event.action,
        });
    }

    outcome.events = controller.events().to_vec();
    outcome.final_latest = registry.latest(name)?.unwrap_or(0);
    Ok(outcome)
}
