//! # libra-obs
//!
//! The telemetry spine of the LiBRA reproduction: a zero-dependency
//! (only `libra-util`) tracing/metrics layer shared by training,
//! serving, the §8 simulator, and the online retrain loop.
//!
//! ## Model
//!
//! Three instrument kinds, all keyed by `&'static str`:
//!
//! * **Counters** ([`counter`]) — monotonic `u64` increments.
//! * **Value histograms** ([`record_value`]) — log₂-bucketed
//!   distributions of *deterministic* quantities (ladder depth,
//!   recovery delay in µs, batch sizes).
//! * **Wall-clock histograms** ([`record_wall`] and [`span`] /
//!   [`span!`]) — log₂-bucketed nanosecond timings with p50/p95/p99.
//!
//! ## Determinism contract
//!
//! Counters and *value* histograms are merged in [`par_map_index`
//! order](libra_util::par) via the [`libra_util::par::TaskHooks`]
//! observer, so their values — including every bucket count — are
//! **bitwise identical at any thread count**. Wall-clock histograms are
//! reported but excluded from [`Report::determinism_digest`]. (Since
//! counter/histogram merging is additive and every work item is
//! observed exactly once, index-ordered merging makes the whole
//! collection order-independent.)
//!
//! ## Cost when disabled
//!
//! Collection is off by default. Every instrument early-returns on a
//! relaxed atomic load, allocating nothing — verified by the serving
//! zero-allocation test via [`alloc_count`], the collector's own
//! allocation ledger (incremented whenever *it* allocates: frames,
//! map entries, merge boxes).
//!
//! ## Scopes
//!
//! Binaries turn the collector on globally with [`set_enabled`] and
//! drain it with [`take_root_report`]. Library benchmarks instead wrap
//! a region in [`with_scope`], which returns the *delta* [`Report`] for
//! that region while still folding it into the enclosing scope.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Once;
use std::time::Instant;

use libra_util::checksum::fnv1a64;
use libra_util::par::{install_task_hooks, TaskHooks};
use libra_util::table::TextTable;

/// Sticky process-wide enable flag (the `--trace` path in binaries).
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
/// Number of live [`with_scope`] regions across all threads. Collection
/// is active while this is non-zero so `par_map` workers observe too.
static SCOPE_DEPTH: AtomicUsize = AtomicUsize::new(0);
/// Self-reported allocation ledger: bumped whenever the collector
/// itself allocates (new frame, new map entry, merge box).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static INIT: Once = Once::new();

thread_local! {
    /// Per-thread stack of observation frames. The bottom frame is the
    /// implicit root; [`with_scope`] and the par-task hooks push/pop
    /// child frames.
    static FRAMES: RefCell<Vec<Report>> = const { RefCell::new(Vec::new()) };
}

/// Whether collection is currently active.
#[inline]
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed) || SCOPE_DEPTH.load(Ordering::Relaxed) > 0
}

/// Turns the process-wide collector on or off (sticky; used by the
/// `--trace` flag in binaries). Also installs the `par_map` merge
/// hooks on first enable.
pub fn set_enabled(on: bool) {
    if on {
        init();
    }
    GLOBAL_ENABLED.store(on, Ordering::SeqCst);
}

/// Installs the [`TaskHooks`] observer into `libra_util::par` (idempotent).
pub fn init() {
    INIT.call_once(|| {
        install_task_hooks(TaskHooks {
            enter: hook_enter,
            exit: hook_exit,
            merge: hook_merge,
        });
    });
}

fn note_allocs(n: u64) {
    ALLOCS.fetch_add(n, Ordering::Relaxed);
}

/// Total allocations the collector has performed since process start.
/// With collection disabled this must not move — the zero-cost test
/// asserts exactly that across a serving pass.
pub fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn with_top<R>(f: impl FnOnce(&mut Report) -> R) -> R {
    FRAMES.with(|frames| {
        let mut stack = frames.borrow_mut();
        if stack.is_empty() {
            note_allocs(1);
            stack.push(Report::default());
        }
        f(stack.last_mut().expect("frame stack non-empty"))
    })
}

/// Adds `delta` to the named monotonic counter (no-op when disabled).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_top(|frame| frame.add_counter(name, delta));
}

/// Records a *deterministic* value (included in determinism digests)
/// into the named log₂ histogram (no-op when disabled).
#[inline]
pub fn record_value(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    with_top(|frame| frame.observe(name, HistKind::Value, value));
}

/// Records a wall-clock duration in nanoseconds (reported, but excluded
/// from determinism digests) into the named log₂ histogram.
#[inline]
pub fn record_wall(name: &'static str, nanos: u64) {
    if !enabled() {
        return;
    }
    with_top(|frame| frame.observe(name, HistKind::WallClock, nanos));
}

/// An RAII timing scope. On drop it bumps the deterministic counter
/// `name` by one and records the elapsed wall-clock nanoseconds into
/// the wall histogram `name`. Created by [`span`] or the [`span!`]
/// macro; does nothing when collection is disabled.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a [`Span`] (cheap no-op when collection is disabled).
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            counter(self.name, 1);
            record_wall(self.name, nanos);
        }
    }
}

/// Opens a timing scope bound to the rest of the enclosing block:
/// `span!("train.forest.fit");`. Hygienic — multiple `span!`s may share
/// a block.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _obs_span_guard = $crate::span($name);
    };
}

/// Runs `f` with collection active, returning its result together with
/// the **delta** [`Report`] of everything observed inside. The delta is
/// also folded into the enclosing scope (or the thread's root frame),
/// so nested scopes compose.
pub fn with_scope<R>(f: impl FnOnce() -> R) -> (R, Report) {
    init();
    note_allocs(1); // the pushed frame below
    FRAMES.with(|frames| frames.borrow_mut().push(Report::default()));
    SCOPE_DEPTH.fetch_add(1, Ordering::SeqCst);
    let result = f();
    SCOPE_DEPTH.fetch_sub(1, Ordering::SeqCst);
    let delta = FRAMES
        .with(|frames| frames.borrow_mut().pop())
        .expect("with_scope frame still on stack");
    with_top(|frame| frame.merge_from(&delta));
    (result, delta)
}

/// Folds an externally collected delta [`Report`] into the calling
/// thread's innermost live frame (no-op when collection is disabled).
///
/// This is how a subsystem that owns long-lived worker threads — e.g.
/// the serving shards, whose lifetime spans many `with_scope` calls —
/// hands the observations those threads collected back to the thread
/// that owns the enclosing scope. Callers must merge in a fixed order
/// (shard index) so the folded report is deterministic.
pub fn merge_report(report: &Report) {
    if !enabled() {
        return;
    }
    with_top(|frame| frame.merge_from(report));
}

/// Drains and returns this thread's root report (everything observed on
/// this thread — plus everything merged back from `par_map` workers —
/// since the last drain).
pub fn take_root_report() -> Report {
    FRAMES.with(|frames| {
        let mut stack = frames.borrow_mut();
        if stack.is_empty() {
            Report::default()
        } else {
            std::mem::take(&mut stack[0])
        }
    })
}

/// Writes a report under `dir` as machine-readable `trace.jsonl` plus a
/// human-readable `obs_summary.txt`, creating `dir` if needed. Returns
/// the two paths. This is the shared emission path behind the `--trace`
/// flag of `libractl` and `experiments`.
pub fn write_trace_files(
    report: &Report,
    dir: &std::path::Path,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let jsonl = dir.join("trace.jsonl");
    let summary = dir.join("obs_summary.txt");
    std::fs::write(&jsonl, report.to_jsonl())?;
    std::fs::write(&summary, report.summary_table())?;
    Ok((jsonl, summary))
}

// ---------------------------------------------------------------------------
// par_map task hooks
// ---------------------------------------------------------------------------

fn hook_enter() {
    if !enabled() {
        return;
    }
    note_allocs(1);
    FRAMES.with(|frames| frames.borrow_mut().push(Report::default()));
}

fn hook_exit() -> Box<dyn Any + Send> {
    if !enabled() {
        return Box::new(()); // ZST box: no allocation
    }
    match FRAMES.with(|frames| frames.borrow_mut().pop()) {
        Some(frame) if !frame.is_empty() => {
            note_allocs(1);
            Box::new(frame)
        }
        _ => Box::new(()),
    }
}

fn hook_merge(data: Box<dyn Any + Send>) {
    if let Ok(frame) = data.downcast::<Report>() {
        with_top(|top| top.merge_from(&frame));
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Whether a histogram's contents participate in determinism digests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Deterministic quantity — digested, bitwise identical at any
    /// thread count.
    Value,
    /// Wall-clock timing — reported, but exempt from digests.
    WallClock,
}

/// Number of log₂ buckets per histogram (covers the full `u64` range).
pub const N_BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` observations. Bucket 0 holds
/// zeros; bucket `b > 0` holds values in `[2^(b-1), 2^b)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Digest participation of this histogram.
    pub kind: HistKind,
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (wrapping).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts.
    pub buckets: [u64; N_BUCKETS],
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(N_BUCKETS - 1)
    }
}

fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= N_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Default for Hist {
    /// An empty `Value` histogram — the fallback for a report that
    /// never recorded under a name.
    fn default() -> Self {
        Self::new(HistKind::Value)
    }
}

impl Hist {
    fn new(kind: HistKind) -> Self {
        Self {
            kind,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; N_BUCKETS],
        }
    }

    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_index(v)] += 1;
    }

    fn merge_from(&mut self, other: &Hist) {
        debug_assert_eq!(self.kind, other.kind, "histogram kind mismatch");
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`): the upper bound of the
    /// bucket containing the `⌈q·count⌉`-th observation. Exact enough
    /// for order-of-magnitude latency reporting, and deterministic.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// An immutable snapshot of observed counters and histograms, merged
/// deterministically (BTreeMap keys give a stable serialization order).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms by name.
    pub hists: BTreeMap<&'static str, Hist>,
}

impl Report {
    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    fn add_counter(&mut self, name: &'static str, delta: u64) {
        match self.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                note_allocs(1);
                self.counters.insert(name, delta);
            }
        }
    }

    fn observe(&mut self, name: &'static str, kind: HistKind, v: u64) {
        match self.hists.get_mut(name) {
            Some(h) => h.observe(v),
            None => {
                note_allocs(1);
                let mut h = Hist::new(kind);
                h.observe(v);
                self.hists.insert(name, h);
            }
        }
    }

    /// Folds `other` into `self` (additive; commutative for all stored
    /// statistics, so index-ordered merging is fully deterministic).
    pub fn merge_from(&mut self, other: &Report) {
        for (&name, &v) in &other.counters {
            self.add_counter(name, v);
        }
        for (&name, h) in &other.hists {
            match self.hists.get_mut(name) {
                Some(mine) => mine.merge_from(h),
                None => {
                    note_allocs(1);
                    self.hists.insert(name, h.clone());
                }
            }
        }
    }

    /// Counter value by name (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if observed.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Sum of wall-clock nanoseconds recorded under `name` (0 when the
    /// histogram is absent). The bench harnesses read span timings
    /// through this instead of ad-hoc `Instant` pairs.
    pub fn wall_nanos(&self, name: &str) -> u64 {
        self.hists.get(name).map_or(0, |h| h.sum)
    }

    /// FNV-1a digest over every counter and every **Value** histogram
    /// (name, count, sum, min, max, all 64 bucket counts). Wall-clock
    /// histograms are excluded, so the digest is bitwise identical at
    /// any thread count.
    pub fn determinism_digest(&self) -> u64 {
        let mut bytes = Vec::new();
        for (name, v) in &self.counters {
            bytes.extend_from_slice(name.as_bytes());
            bytes.push(0);
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for (name, h) in &self.hists {
            if h.kind != HistKind::Value {
                continue;
            }
            bytes.extend_from_slice(name.as_bytes());
            bytes.push(1);
            bytes.extend_from_slice(&h.count.to_le_bytes());
            bytes.extend_from_slice(&h.sum.to_le_bytes());
            bytes.extend_from_slice(&h.min.to_le_bytes());
            bytes.extend_from_slice(&h.max.to_le_bytes());
            for b in &h.buckets {
                bytes.extend_from_slice(&b.to_le_bytes());
            }
        }
        fnv1a64(&bytes)
    }

    /// Serializes the report as JSON Lines: one `counter` record per
    /// counter, one `hist` record per histogram (non-empty buckets as
    /// `[bucket_index, count]` pairs). Names are `&'static str`
    /// identifiers, so no JSON escaping is required.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}\n"
            ));
        }
        for (name, h) in &self.hists {
            let kind = match h.kind {
                HistKind::Value => "value",
                HistKind::WallClock => "wall",
            };
            let buckets: Vec<String> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| format!("[{i},{c}]"))
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"hist\",\"name\":\"{name}\",\"kind\":\"{kind}\",\
                 \"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}\n",
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
                buckets.join(",")
            ));
        }
        out
    }

    /// Renders the human-readable summary table appended to
    /// `results/obs_summary.txt`.
    pub fn summary_table(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() {
            let mut t = TextTable::new(["counter", "value"]);
            for (name, v) in &self.counters {
                t.row([name.to_string(), v.to_string()]);
            }
            s.push_str(&t.render());
        }
        if !self.hists.is_empty() {
            if !s.is_empty() {
                s.push('\n');
            }
            let mut t = TextTable::new([
                "histogram",
                "kind",
                "count",
                "min",
                "p50",
                "p95",
                "p99",
                "max",
            ]);
            for (name, h) in &self.hists {
                let kind = match h.kind {
                    HistKind::Value => "value",
                    HistKind::WallClock => "wall(ns)",
                };
                t.row([
                    name.to_string(),
                    kind.to_string(),
                    h.count.to_string(),
                    if h.count == 0 { 0 } else { h.min }.to_string(),
                    h.percentile(0.50).to_string(),
                    h.percentile(0.95).to_string(),
                    h.percentile(0.99).to_string(),
                    h.max.to_string(),
                ]);
            }
            s.push_str(&t.render());
        }
        if s.is_empty() {
            s.push_str("(no observations)\n");
        }
        s
    }
}

fn jsonl_field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Recovers one named histogram from a trace written by
/// [`Report::to_jsonl`] — the replay half of the telemetry loop (e.g.
/// feeding a recorded `serve.decision_ns` distribution back into the §8
/// simulator's decision-delay model). Hand-rolled on purpose: traces
/// are machine-written with identifier names, so no JSON escaping can
/// occur, and the workspace carries no JSON dependency.
///
/// Returns `None` when no `hist` record named `name` is present or a
/// record is torn mid-line.
pub fn parse_hist_jsonl(text: &str, name: &str) -> Option<Hist> {
    let tag = format!("\"name\":\"{name}\"");
    for line in text.lines() {
        if !line.contains("\"type\":\"hist\"") || !line.contains(&tag) {
            continue;
        }
        let kind = if line.contains("\"kind\":\"wall\"") {
            HistKind::WallClock
        } else {
            HistKind::Value
        };
        let mut hist = Hist {
            kind,
            count: jsonl_field_u64(line, "count")?,
            sum: jsonl_field_u64(line, "sum")?,
            min: jsonl_field_u64(line, "min")?,
            max: jsonl_field_u64(line, "max")?,
            buckets: [0; N_BUCKETS],
        };
        let open = "\"buckets\":[";
        let start = line.find(open)? + open.len();
        let end = line[start..].rfind(']')? + start;
        for pair in line[start..end].split("],[") {
            let pair = pair.trim_matches(|c| c == '[' || c == ']');
            if pair.is_empty() {
                continue;
            }
            let (bucket, count) = pair.split_once(',')?;
            let bucket: usize = bucket.trim().parse().ok()?;
            if bucket >= N_BUCKETS {
                return None;
            }
            hist.buckets[bucket] = count.trim().parse().ok()?;
        }
        return Some(hist);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_util::par::{par_map_index, set_threads};
    use std::sync::Mutex;

    /// The collector state is process-global; tests that enable it or
    /// change the thread count must not interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_instruments_do_not_allocate() {
        let _g = lock();
        let before = alloc_count();
        for i in 0..1000 {
            counter("test.noop", 1);
            record_value("test.noop.v", i);
            record_wall("test.noop.w", i);
            let _s = span("test.noop.span");
        }
        assert_eq!(alloc_count(), before);
    }

    #[test]
    fn hist_jsonl_round_trips() {
        let _g = lock();
        let ((), report) = with_scope(|| {
            for v in [0u64, 1, 7, 7, 130, 4096] {
                record_value("test.rt.values", v);
            }
            record_wall("test.rt.wall", 1_500_000);
        });
        let text = report.to_jsonl();
        let values = parse_hist_jsonl(&text, "test.rt.values").expect("value hist present");
        assert_eq!(&values, report.hist("test.rt.values").expect("recorded"));
        assert_eq!(values.kind, HistKind::Value);
        let wall = parse_hist_jsonl(&text, "test.rt.wall").expect("wall hist present");
        assert_eq!(wall.kind, HistKind::WallClock);
        assert_eq!(wall.count, 1);
        // Percentiles survive the round trip (same buckets, same math).
        assert_eq!(
            values.percentile(0.5),
            report
                .hist("test.rt.values")
                .expect("recorded")
                .percentile(0.5)
        );
        // Absent names and non-hist records don't parse.
        assert!(parse_hist_jsonl(&text, "test.rt.missing").is_none());
        assert!(
            parse_hist_jsonl("{\"type\":\"counter\",\"name\":\"x\",\"value\":3}", "x").is_none()
        );
    }

    #[test]
    fn scope_collects_counters_and_hists() {
        let _g = lock();
        let ((), report) = with_scope(|| {
            counter("test.scope.c", 2);
            counter("test.scope.c", 3);
            record_value("test.scope.v", 7);
            record_value("test.scope.v", 9);
        });
        assert_eq!(report.counter("test.scope.c"), 5);
        let h = report.hist("test.scope.v").expect("hist recorded");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 16);
        assert_eq!(h.min, 7);
        assert_eq!(h.max, 9);
    }

    #[test]
    fn nested_scopes_fold_into_parent() {
        let _g = lock();
        let ((), outer) = with_scope(|| {
            counter("test.nest.outer", 1);
            let ((), inner) = with_scope(|| counter("test.nest.inner", 4));
            assert_eq!(inner.counter("test.nest.inner"), 4);
            assert_eq!(inner.counter("test.nest.outer"), 0);
        });
        assert_eq!(outer.counter("test.nest.outer"), 1);
        assert_eq!(outer.counter("test.nest.inner"), 4);
    }

    #[test]
    fn span_records_call_count_and_wall_hist() {
        let _g = lock();
        let ((), report) = with_scope(|| {
            for _ in 0..3 {
                let _s = span("test.span.x");
            }
            span!("test.span.y");
        });
        assert_eq!(report.counter("test.span.x"), 3);
        let h = report.hist("test.span.x").expect("wall hist");
        assert_eq!(h.kind, HistKind::WallClock);
        assert_eq!(h.count, 3);
        assert_eq!(report.counter("test.span.y"), 1);
    }

    #[test]
    fn par_merge_is_thread_count_invariant() {
        let _g = lock();
        let run = |threads: usize| {
            set_threads(threads);
            let ((), report) = with_scope(|| {
                let _ = par_map_index(37, |i| {
                    counter("test.par.items", 1);
                    record_value("test.par.v", i as u64 * 17 % 29);
                    i
                });
            });
            set_threads(0);
            report
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.counter("test.par.items"), 37);
        assert_eq!(par.counter("test.par.items"), 37);
        let (a, b) = (
            seq.hist("test.par.v").unwrap(),
            par.hist("test.par.v").unwrap(),
        );
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(seq.determinism_digest(), par.determinism_digest());
    }

    #[test]
    fn digest_ignores_wall_clock() {
        let _g = lock(); // Report mutation bumps the shared alloc ledger
        let mut a = Report::default();
        let mut b = Report::default();
        a.add_counter("c", 3);
        b.add_counter("c", 3);
        a.observe("w", HistKind::WallClock, 100);
        b.observe("w", HistKind::WallClock, 999_999);
        assert_eq!(a.determinism_digest(), b.determinism_digest());
        a.observe("v", HistKind::Value, 5);
        assert_ne!(a.determinism_digest(), b.determinism_digest());
    }

    #[test]
    fn percentiles_track_bucket_bounds() {
        let mut h = Hist::new(HistKind::Value);
        for v in 1..=100u64 {
            h.observe(v);
        }
        let p50 = h.percentile(0.5);
        assert!((32..=63).contains(&p50), "p50 = {p50}");
        assert_eq!(h.percentile(1.0), 100); // capped at observed max
        assert_eq!(Hist::new(HistKind::Value).percentile(0.5), 0);
    }

    #[test]
    fn jsonl_and_table_render() {
        let _g = lock(); // Report mutation bumps the shared alloc ledger
        let mut r = Report::default();
        r.add_counter("sim.actions.ba", 12);
        r.observe("serve.batch_rows", HistKind::Value, 256);
        let jsonl = r.to_jsonl();
        assert!(jsonl.contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"name\":\"sim.actions.ba\",\"value\":12"));
        assert!(jsonl.contains("\"type\":\"hist\""));
        let table = r.summary_table();
        assert!(table.contains("sim.actions.ba"));
        assert!(table.contains("serve.batch_rows"));
    }

    #[test]
    fn take_root_report_drains() {
        let _g = lock();
        set_enabled(true);
        counter("test.root.c", 9);
        set_enabled(false);
        let r = take_root_report();
        assert_eq!(r.counter("test.root.c"), 9);
        assert_eq!(take_root_report().counter("test.root.c"), 0);
    }
}
