//! Directional co-channel interference.
//!
//! The paper creates interference with a hidden-terminal Talon AD7200 →
//! laptop link placed near the victim Rx, tuning position and sector to
//! reach three nominal severities: **High** (~80 % victim throughput
//! drop), **Medium** (~50 %), **Low** (~20 %) (§4.2).
//!
//! We model an interferer as a directional 60 GHz transmitter whose
//! radiated power reaches the victim Rx attenuated by free space and
//! weighted by the victim's *receive* beam gain toward the interferer's
//! bearing. Interference therefore raises the victim's effective noise
//! floor — and, because the weighting depends on the Rx beam, switching
//! beams can spatially filter it (why BA sometimes still wins under
//! interference).

use crate::geometry::{Point, Pose};
use libra_arrays::BeamPattern;
use libra_util::db::friis_path_loss_db;
use serde::{Deserialize, Serialize};

/// Nominal interference severity levels of the measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterferenceLevel {
    /// ~20 % victim throughput drop.
    Low,
    /// ~50 % drop.
    Medium,
    /// ~80 % drop.
    High,
}

impl InterferenceLevel {
    /// All three levels.
    pub const ALL: [InterferenceLevel; 3] = [
        InterferenceLevel::Low,
        InterferenceLevel::Medium,
        InterferenceLevel::High,
    ];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            InterferenceLevel::Low => "low",
            InterferenceLevel::Medium => "medium",
            InterferenceLevel::High => "high",
        }
    }

    /// EIRP of the hidden terminal toward the victim for this severity,
    /// dBm. Tuned so that at a typical ~3 m interferer distance the
    /// effective noise floor rises by ≈3 / 9 / 15 dB — the SINR losses
    /// that produce roughly the paper's 20 / 50 / 80 % victim
    /// throughput drops on the X60 MCS ladder.
    pub fn eirp_dbm(self) -> f64 {
        match self {
            InterferenceLevel::Low => 2.0,
            InterferenceLevel::Medium => 10.0,
            InterferenceLevel::High => 17.0,
        }
    }
}

/// A co-channel interfering transmitter (the hidden terminal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interferer {
    /// Interferer antenna position.
    pub position: Point,
    /// Radiated power toward the victim (EIRP already includes the
    /// interferer's own Tx beam gain in the victim's direction), dBm.
    pub eirp_dbm: f64,
    /// Fraction of airtime the interferer is actually transmitting
    /// (a saturated iperf hidden terminal ≈ 1.0).
    pub duty_cycle: f64,
}

impl Interferer {
    /// An interferer at `position` with the given nominal severity.
    pub fn at_level(position: Point, level: InterferenceLevel) -> Self {
        Self {
            position,
            eirp_dbm: level.eirp_dbm(),
            duty_cycle: 1.0,
        }
    }

    /// Fraction of interference power arriving via the direct bearing;
    /// the rest arrives diffusely (reflections, side-lobe leakage) and
    /// cannot be spatially filtered by the victim's beam. Indoor 60 GHz
    /// interference measurements show beam switching recovers only a few
    /// dB — which is why the paper finds RA preferable in 67 % of the
    /// interference cases.
    pub const DIRECT_FRACTION: f64 = 0.35;

    /// Average interference power this source contributes at a victim
    /// receiver with pose `rx_pose` listening on `rx_beam`, in dBm.
    ///
    /// The direct component is weighted by the beam gain toward the
    /// interferer; the diffuse component by the beam's mean gain over
    /// all azimuths.
    pub fn power_at_rx_dbm(&self, rx_pose: &Pose, rx_beam: &BeamPattern) -> f64 {
        let dist = self.position.distance(rx_pose.position).max(0.1);
        let bearing = rx_pose.position.bearing_deg(self.position);
        let rx_gain_direct = rx_beam.gain_dbi(rx_pose.local_angle_deg(bearing));
        let rx_gain_diffuse = rx_beam.mean_gain_dbi();
        let mixed_gain_linear = Self::DIRECT_FRACTION
            * libra_util::db::db_to_linear(rx_gain_direct)
            + (1.0 - Self::DIRECT_FRACTION) * libra_util::db::db_to_linear(rx_gain_diffuse);
        self.eirp_dbm - friis_path_loss_db(dist)
            + libra_util::db::linear_to_db(mixed_gain_linear)
            + 10.0 * self.duty_cycle.max(1e-6).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_arrays::Codebook;

    #[test]
    fn severity_ordering() {
        assert!(InterferenceLevel::High.eirp_dbm() > InterferenceLevel::Medium.eirp_dbm());
        assert!(InterferenceLevel::Medium.eirp_dbm() > InterferenceLevel::Low.eirp_dbm());
    }

    #[test]
    fn closer_interferer_is_stronger() {
        let rx = Pose::new(Point::new(0.0, 0.0), 0.0);
        let beam = BeamPattern::quasi_omni();
        let near = Interferer::at_level(Point::new(2.0, 0.0), InterferenceLevel::Medium);
        let far = Interferer::at_level(Point::new(8.0, 0.0), InterferenceLevel::Medium);
        assert!(near.power_at_rx_dbm(&rx, &beam) > far.power_at_rx_dbm(&rx, &beam));
    }

    #[test]
    fn rx_beam_spatially_filters_interference() {
        // Interferer at +50°, two Rx beams: one pointed at it, one away.
        let rx = Pose::new(Point::new(0.0, 0.0), 0.0);
        let cb = Codebook::sibeam_25();
        let toward = cb.beam(cb.closest_beam(50.0));
        let away = cb.beam(cb.closest_beam(-50.0));
        let intf = Interferer::at_level(
            Point::new(
                50f64.to_radians().cos() * 4.0,
                50f64.to_radians().sin() * 4.0,
            ),
            InterferenceLevel::High,
        );
        let p_toward = intf.power_at_rx_dbm(&rx, toward);
        let p_away = intf.power_at_rx_dbm(&rx, away);
        // With the diffuse component, filtering gains are capped at a
        // few dB (the reason RA usually wins under interference).
        assert!(
            p_toward - p_away > 2.0,
            "beam should filter some interference: {p_toward} vs {p_away}"
        );
        assert!(
            p_toward - p_away < 8.0,
            "filtering should be capped by the diffuse floor: {}",
            p_toward - p_away
        );
    }

    #[test]
    fn duty_cycle_scales_power() {
        let rx = Pose::new(Point::new(0.0, 0.0), 0.0);
        let beam = BeamPattern::quasi_omni();
        let mut i = Interferer::at_level(Point::new(3.0, 0.0), InterferenceLevel::Low);
        let full = i.power_at_rx_dbm(&rx, &beam);
        i.duty_cycle = 0.5;
        let half = i.power_at_rx_dbm(&rx, &beam);
        assert!((full - half - 3.0103).abs() < 1e-3);
    }
}
