//! Directional co-channel interference.
//!
//! The paper creates interference with a hidden-terminal Talon AD7200 →
//! laptop link placed near the victim Rx, tuning position and sector to
//! reach three nominal severities: **High** (~80 % victim throughput
//! drop), **Medium** (~50 %), **Low** (~20 %) (§4.2).
//!
//! We model an interferer as a directional 60 GHz transmitter whose
//! radiated power reaches the victim Rx attenuated by free space and
//! weighted by the victim's *receive* beam gain toward the interferer's
//! bearing. Interference therefore raises the victim's effective noise
//! floor — and, because the weighting depends on the Rx beam, switching
//! beams can spatially filter it (why BA sometimes still wins under
//! interference).

use crate::geometry::{Point, Pose};
use libra_arrays::BeamPattern;
use libra_util::db::friis_path_loss_db;
use serde::{Deserialize, Serialize};

/// Nominal interference severity levels of the measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InterferenceLevel {
    /// ~20 % victim throughput drop.
    Low,
    /// ~50 % drop.
    Medium,
    /// ~80 % drop.
    High,
}

impl InterferenceLevel {
    /// All three levels.
    pub const ALL: [InterferenceLevel; 3] = [
        InterferenceLevel::Low,
        InterferenceLevel::Medium,
        InterferenceLevel::High,
    ];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            InterferenceLevel::Low => "low",
            InterferenceLevel::Medium => "medium",
            InterferenceLevel::High => "high",
        }
    }

    /// EIRP of the hidden terminal toward the victim for this severity,
    /// dBm. Tuned so that at a typical ~3 m interferer distance the
    /// effective noise floor rises by ≈3 / 9 / 15 dB — the SINR losses
    /// that produce roughly the paper's 20 / 50 / 80 % victim
    /// throughput drops on the X60 MCS ladder.
    pub fn eirp_dbm(self) -> f64 {
        match self {
            InterferenceLevel::Low => 2.0,
            InterferenceLevel::Medium => 10.0,
            InterferenceLevel::High => 17.0,
        }
    }
}

/// A co-channel interfering transmitter (the hidden terminal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interferer {
    /// Interferer antenna position.
    pub position: Point,
    /// Radiated power toward the victim (EIRP already includes the
    /// interferer's own Tx beam gain in the victim's direction), dBm.
    pub eirp_dbm: f64,
    /// Fraction of airtime the interferer is actually transmitting
    /// (a saturated iperf hidden terminal ≈ 1.0).
    pub duty_cycle: f64,
}

impl Interferer {
    /// An interferer at `position` with the given nominal severity.
    pub fn at_level(position: Point, level: InterferenceLevel) -> Self {
        Self {
            position,
            eirp_dbm: level.eirp_dbm(),
            duty_cycle: 1.0,
        }
    }

    /// Fraction of interference power arriving via the direct bearing;
    /// the rest arrives diffusely (reflections, side-lobe leakage) and
    /// cannot be spatially filtered by the victim's beam. Indoor 60 GHz
    /// interference measurements show beam switching recovers only a few
    /// dB — which is why the paper finds RA preferable in 67 % of the
    /// interference cases.
    pub const DIRECT_FRACTION: f64 = 0.35;

    /// Average interference power this source contributes at a victim
    /// receiver with pose `rx_pose` listening on `rx_beam`, in dBm.
    ///
    /// The direct component is weighted by the beam gain toward the
    /// interferer; the diffuse component by the beam's mean gain over
    /// all azimuths.
    pub fn power_at_rx_dbm(&self, rx_pose: &Pose, rx_beam: &BeamPattern) -> f64 {
        let dist = self.position.distance(rx_pose.position).max(0.1);
        let bearing = rx_pose.position.bearing_deg(self.position);
        let rx_gain_direct = rx_beam.gain_dbi(rx_pose.local_angle_deg(bearing));
        let rx_gain_diffuse = rx_beam.mean_gain_dbi();
        let mixed_gain_linear = Self::DIRECT_FRACTION
            * libra_util::db::db_to_linear(rx_gain_direct)
            + (1.0 - Self::DIRECT_FRACTION) * libra_util::db::db_to_linear(rx_gain_diffuse);
        self.eirp_dbm - friis_path_loss_db(dist)
            + libra_util::db::linear_to_db(mixed_gain_linear)
            + 10.0 * self.duty_cycle.max(1e-6).log10()
    }
}

/// One station's active transmission, as seen by its geometric
/// neighbors (cross-station coupling for the multi-station simulator).
///
/// Unlike [`Interferer`] — the hidden terminal of the measurement
/// campaign, whose coupling is weighted by the victim's receive beam —
/// a neighboring station couples through side-lobe leakage and
/// reflections, which the victim's beam cannot steer away from. We
/// therefore model the received power as quasi-omni: EIRP minus free
/// space, scaled by the transmitter's airtime duty cycle (a station
/// holding 25 % of the TDMA frame radiates a quarter of the time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveTx {
    /// Transmitter position.
    pub position: Point,
    /// Leakage EIRP toward off-axis neighbors, dBm.
    pub eirp_dbm: f64,
    /// Fraction of airtime the station actually transmits (its TDMA
    /// share in the multi-station engine).
    pub duty_cycle: f64,
}

impl ActiveTx {
    /// Average power this transmission contributes at `victim`, dBm
    /// (`-inf` at zero duty cycle).
    pub fn power_at_dbm(&self, victim: Point) -> f64 {
        if self.duty_cycle <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let dist = self.position.distance(victim).max(0.1);
        self.eirp_dbm - friis_path_loss_db(dist) + 10.0 * self.duty_cycle.log10()
    }
}

/// Aggregate interference power at `victim` from every active
/// neighboring transmission, dBm (`-inf` when there are none).
///
/// The multi-station engine recomputes this on topology-change events
/// — a station (re)entering a segment, joining or leaving a cell — and
/// folds the result into the victim's effective SNR.
pub fn coupled_interference_dbm(victim: Point, sources: &[ActiveTx]) -> f64 {
    let powers: Vec<f64> = sources
        .iter()
        .map(|s| s.power_at_dbm(victim))
        .filter(|p| p.is_finite())
        .collect();
    if powers.is_empty() {
        f64::NEG_INFINITY
    } else {
        libra_util::db::sum_powers_dbm(&powers)
    }
}

/// Effective-SNR loss from an interference level over a noise floor,
/// dB: `10·log₁₀(1 + I/N)`. Zero when there is no interference.
pub fn noise_rise_db(interference_dbm: f64, noise_floor_dbm: f64) -> f64 {
    if !interference_dbm.is_finite() {
        return 0.0;
    }
    let i = libra_util::db::dbm_to_mw(interference_dbm);
    let n = libra_util::db::dbm_to_mw(noise_floor_dbm);
    10.0 * (1.0 + i / n).log10()
}

#[cfg(test)]
mod coupling_tests {
    use super::*;

    #[test]
    fn no_sources_no_rise() {
        let agg = coupled_interference_dbm(Point::new(0.0, 0.0), &[]);
        assert!(agg.is_infinite() && agg < 0.0);
        assert_eq!(noise_rise_db(agg, -74.0), 0.0);
    }

    #[test]
    fn closer_and_busier_neighbors_couple_harder() {
        let victim = Point::new(0.0, 0.0);
        let near = ActiveTx {
            position: Point::new(2.0, 0.0),
            eirp_dbm: 8.0,
            duty_cycle: 1.0,
        };
        let far = ActiveTx {
            position: Point::new(9.0, 0.0),
            ..near
        };
        let idle = ActiveTx {
            duty_cycle: 0.25,
            ..near
        };
        assert!(near.power_at_dbm(victim) > far.power_at_dbm(victim));
        assert!(near.power_at_dbm(victim) > idle.power_at_dbm(victim));
        // Quarter duty = −6 dB.
        let d = near.power_at_dbm(victim) - idle.power_at_dbm(victim);
        assert!((d - 10.0 * 4f64.log10()).abs() < 1e-9);
    }

    #[test]
    fn aggregate_sums_in_power_domain() {
        let victim = Point::new(0.0, 0.0);
        let src = ActiveTx {
            position: Point::new(3.0, 0.0),
            eirp_dbm: 8.0,
            duty_cycle: 1.0,
        };
        let one = coupled_interference_dbm(victim, &[src]);
        let two = coupled_interference_dbm(victim, &[src, src]);
        // Two equal sources: +3 dB.
        assert!((two - one - 10.0 * 2f64.log10()).abs() < 1e-9);
        // Zero-duty sources contribute nothing.
        let silent = ActiveTx {
            duty_cycle: 0.0,
            ..src
        };
        assert_eq!(coupled_interference_dbm(victim, &[src, silent]), one);
    }

    #[test]
    fn noise_rise_tracks_inr() {
        // Interference equal to the noise floor doubles the floor: +3 dB.
        let rise = noise_rise_db(-74.0, -74.0);
        assert!((rise - 10.0 * 2f64.log10()).abs() < 1e-9);
        // 10 dB below the floor: ≈ 0.41 dB.
        let weak = noise_rise_db(-84.0, -74.0);
        assert!(weak > 0.0 && weak < 1.0);
        // Monotone in interference power.
        assert!(noise_rise_db(-64.0, -74.0) > rise);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_arrays::Codebook;

    #[test]
    fn severity_ordering() {
        assert!(InterferenceLevel::High.eirp_dbm() > InterferenceLevel::Medium.eirp_dbm());
        assert!(InterferenceLevel::Medium.eirp_dbm() > InterferenceLevel::Low.eirp_dbm());
    }

    #[test]
    fn closer_interferer_is_stronger() {
        let rx = Pose::new(Point::new(0.0, 0.0), 0.0);
        let beam = BeamPattern::quasi_omni();
        let near = Interferer::at_level(Point::new(2.0, 0.0), InterferenceLevel::Medium);
        let far = Interferer::at_level(Point::new(8.0, 0.0), InterferenceLevel::Medium);
        assert!(near.power_at_rx_dbm(&rx, &beam) > far.power_at_rx_dbm(&rx, &beam));
    }

    #[test]
    fn rx_beam_spatially_filters_interference() {
        // Interferer at +50°, two Rx beams: one pointed at it, one away.
        let rx = Pose::new(Point::new(0.0, 0.0), 0.0);
        let cb = Codebook::sibeam_25();
        let toward = cb.beam(cb.closest_beam(50.0));
        let away = cb.beam(cb.closest_beam(-50.0));
        let intf = Interferer::at_level(
            Point::new(
                50f64.to_radians().cos() * 4.0,
                50f64.to_radians().sin() * 4.0,
            ),
            InterferenceLevel::High,
        );
        let p_toward = intf.power_at_rx_dbm(&rx, toward);
        let p_away = intf.power_at_rx_dbm(&rx, away);
        // With the diffuse component, filtering gains are capped at a
        // few dB (the reason RA usually wins under interference).
        assert!(
            p_toward - p_away > 2.0,
            "beam should filter some interference: {p_toward} vs {p_away}"
        );
        assert!(
            p_toward - p_away < 8.0,
            "filtering should be capped by the diffuse floor: {}",
            p_toward - p_away
        );
    }

    #[test]
    fn duty_cycle_scales_power() {
        let rx = Pose::new(Point::new(0.0, 0.0), 0.0);
        let beam = BeamPattern::quasi_omni();
        let mut i = Interferer::at_level(Point::new(3.0, 0.0), InterferenceLevel::Low);
        let full = i.power_at_rx_dbm(&rx, &beam);
        i.duty_cycle = 0.5;
        let half = i.power_at_rx_dbm(&rx, &beam);
        assert!((full - half - 3.0103).abs() < 1e-3);
    }
}
