//! Rooms: boundary walls, interior reflectors, and the environment
//! catalogue from the paper's measurement campaign (Appendix A.2.1).

use crate::geometry::{Point, Segment};
use serde::{Deserialize, Serialize};

/// Surface material of a wall or furniture face, determining how much
/// power a 60 GHz specular reflection retains.
///
/// Reflection losses follow the values reported in 60 GHz indoor
/// measurement literature: metal is nearly lossless, drywall loses around
/// 10 dB, brick/concrete more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Metallic sheet / cabinet — excellent 60 GHz reflector.
    Metal,
    /// Glass panel — good reflector.
    Glass,
    /// Interior drywall.
    Drywall,
    /// Whiteboard (laminated surface) — good reflector.
    Whiteboard,
    /// Brick / old masonry — lossy, diffuse at 60 GHz.
    Brick,
    /// Concrete.
    Concrete,
}

impl Material {
    /// Power lost at a specular reflection off this material, in dB.
    pub fn reflection_loss_db(self) -> f64 {
        match self {
            Material::Metal => 1.0,
            Material::Glass => 4.0,
            Material::Whiteboard => 5.0,
            Material::Drywall => 9.0,
            Material::Concrete => 12.0,
            Material::Brick => 15.0,
        }
    }

    /// Power lost when a ray penetrates a surface of this material, in dB.
    /// At 60 GHz even drywall attenuates heavily; metal is opaque.
    pub fn penetration_loss_db(self) -> f64 {
        match self {
            Material::Metal => 60.0,
            Material::Glass => 8.0,
            Material::Whiteboard => 20.0,
            Material::Drywall => 15.0,
            Material::Concrete => 40.0,
            Material::Brick => 35.0,
        }
    }
}

/// A reflective (and possibly occluding) planar face in the room.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// The face geometry.
    pub segment: Segment,
    /// Face material.
    pub material: Material,
    /// Whether the face occludes rays crossing it (boundary walls of a
    /// convex room never sit between Tx and Rx, but interior furniture
    /// like the lab's cabinet rows does).
    pub occluding: bool,
}

impl Wall {
    /// A boundary wall (non-occluding within a convex room).
    pub fn boundary(a: Point, b: Point, material: Material) -> Self {
        Self {
            segment: Segment::new(a, b),
            material,
            occluding: false,
        }
    }

    /// An interior face that both reflects and occludes.
    pub fn interior(a: Point, b: Point, material: Material) -> Self {
        Self {
            segment: Segment::new(a, b),
            material,
            occluding: true,
        }
    }
}

/// A room: a set of reflective faces in a 2-D plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Room {
    /// Human-readable name (e.g. `"lobby"`).
    pub name: String,
    /// All reflective faces: boundary walls first, interior faces after.
    pub walls: Vec<Wall>,
    /// How many of `walls` form the room boundary (the rest are
    /// interior furniture faces).
    pub n_boundary: usize,
    /// Bounding box width (x extent), metres — for documentation/plotting.
    pub width_m: f64,
    /// Bounding box depth (y extent), metres.
    pub depth_m: f64,
}

impl Room {
    /// A rectangular room `[0, width] × [0, depth]` with per-side
    /// materials `[south (y=0), east (x=w), north (y=d), west (x=0)]`.
    pub fn rectangular(name: &str, width_m: f64, depth_m: f64, sides: [Material; 4]) -> Self {
        let w = width_m;
        let d = depth_m;
        let p = Point::new;
        let walls = vec![
            Wall::boundary(p(0.0, 0.0), p(w, 0.0), sides[0]),
            Wall::boundary(p(w, 0.0), p(w, d), sides[1]),
            Wall::boundary(p(w, d), p(0.0, d), sides[2]),
            Wall::boundary(p(0.0, d), p(0.0, 0.0), sides[3]),
        ];
        Self {
            name: name.to_string(),
            walls,
            n_boundary: 4,
            width_m,
            depth_m,
        }
    }

    /// A general polygonal room from a counter-clockwise vertex list;
    /// `materials[i]` is the material of the edge `vertices[i] →
    /// vertices[i+1]`.
    ///
    /// Unlike [`Room::rectangular`], polygon boundary walls are marked
    /// *occluding*: a non-convex floor plan (an L-shaped corridor, a
    /// room with an alcove) has boundary segments that can lie between
    /// two interior points, and a ray crossing one has left the room —
    /// at 60 GHz that is a wall penetration and is charged as such.
    pub fn polygon(name: &str, vertices: &[Point], materials: &[Material]) -> Self {
        assert!(vertices.len() >= 3, "a polygon needs at least 3 vertices");
        assert_eq!(vertices.len(), materials.len(), "one material per edge");
        let walls = vertices
            .iter()
            .zip(vertices.iter().cycle().skip(1))
            .zip(materials)
            .map(|((&a, &b), &m)| Wall::interior(a, b, m))
            .collect();
        let min_x = vertices.iter().map(|v| v.x).fold(f64::INFINITY, f64::min);
        let max_x = vertices
            .iter()
            .map(|v| v.x)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_y = vertices.iter().map(|v| v.y).fold(f64::INFINITY, f64::min);
        let max_y = vertices
            .iter()
            .map(|v| v.y)
            .fold(f64::NEG_INFINITY, f64::max);
        let n_boundary = vertices.len();
        Self {
            name: name.to_string(),
            walls,
            n_boundary,
            width_m: max_x - min_x,
            depth_m: max_y - min_y,
        }
    }

    /// Adds an interior reflective/occluding face (cabinets, desks, …).
    pub fn with_interior(mut self, a: Point, b: Point, material: Material) -> Self {
        self.walls.push(Wall::interior(a, b, material));
        self
    }

    /// Faces that occlude propagation.
    pub fn occluders(&self) -> impl Iterator<Item = &Wall> {
        self.walls.iter().filter(|w| w.occluding)
    }

    /// Even–odd (ray-casting) point-in-polygon test against the boundary
    /// walls (the first `n_boundary` faces); interior furniture is
    /// ignored. The cast ray is tilted slightly so it cannot run
    /// collinear with an axis-aligned wall.
    pub fn contains(&self, p: Point) -> bool {
        let far = Point::new(
            p.x + self.width_m + self.depth_m + 10.0,
            p.y + 0.37, // irrational-ish tilt avoids vertex grazing
        );
        let ray = Segment::new(p, far);
        let crossings = self
            .walls
            .iter()
            .take(self.n_boundary)
            .filter(|w| w.segment.intersect(&ray).is_some())
            .count();
        crossings % 2 == 1
    }
}

/// The environment catalogue of the measurement campaign.
///
/// Geometries approximate the descriptions in Appendix A.2.1; materials
/// follow the text (lobby: glass/metal side; lab: metallic storage
/// cabinets; conference room: whiteboard + metal cabinets; Building 1:
/// old brick corridor with fewer reflective surfaces; Building 2: wide
/// open area).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// Large open lobby, one glass/metal side.
    Lobby,
    /// 11.8 × 9.2 m lab with metallic cabinet rows.
    Lab,
    /// 10.4 × 6.8 m conference room, whiteboard wall.
    ConferenceRoom,
    /// 1.74 m wide corridor.
    CorridorNarrow,
    /// 3.2 m wide corridor.
    CorridorMedium,
    /// 6.2 m wide corridor.
    CorridorWide,
    /// Extension environment (not part of the paper's campaign): an
    /// L-shaped corridor whose corner breaks the LOS — the classic
    /// "turn the corner and the link dies" mmWave scenario.
    LCorridor,
    /// Testing dataset: old-building corridor, 2.5 m, brick.
    Building1Corridor,
    /// Testing dataset: very large open area.
    Building2OpenArea,
}

impl Environment {
    /// All environments of the *main* (training) dataset (Table 1).
    pub const MAIN: [Environment; 6] = [
        Environment::Lobby,
        Environment::Lab,
        Environment::ConferenceRoom,
        Environment::CorridorNarrow,
        Environment::CorridorMedium,
        Environment::CorridorWide,
    ];

    /// The held-out environments of the *testing* dataset (Table 2).
    pub const TESTING: [Environment; 2] = [
        Environment::Building1Corridor,
        Environment::Building2OpenArea,
    ];

    /// Short name used in tables and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            Environment::Lobby => "lobby",
            Environment::Lab => "lab",
            Environment::ConferenceRoom => "conference",
            Environment::CorridorNarrow => "corridor-1.74m",
            Environment::CorridorMedium => "corridor-3.2m",
            Environment::CorridorWide => "corridor-6.2m",
            Environment::LCorridor => "l-corridor",
            Environment::Building1Corridor => "building1-corridor",
            Environment::Building2OpenArea => "building2-open",
        }
    }

    /// Builds the room geometry for this environment.
    pub fn room(self) -> Room {
        use Material::*;
        let p = Point::new;
        match self {
            Environment::Lobby => {
                // Large open space; glass panels + metal sheets on one
                // long side, drywall on the other, concrete ends.
                Room::rectangular("lobby", 20.0, 14.0, [Glass, Concrete, Drywall, Concrete])
                    // Metal sheeting along the lower part of the glass side.
                    .with_interior(p(2.0, 0.05), p(18.0, 0.05), Metal)
            }
            Environment::Lab => {
                // 11.8 × 9.2 m; rows of desks surrounded by metallic
                // storage cabinets (modelled as two interior metal rows).
                Room::rectangular("lab", 11.8, 9.2, [Drywall, Drywall, Drywall, Drywall])
                    .with_interior(p(2.0, 3.1), p(9.8, 3.1), Metal)
                    .with_interior(p(2.0, 6.1), p(9.8, 6.1), Metal)
            }
            Environment::ConferenceRoom => {
                // 10.4 × 6.8 m; whiteboard covers one wall, metal
                // cabinets along another, central desk (low, ignored).
                Room::rectangular(
                    "conference",
                    10.4,
                    6.8,
                    [Whiteboard, Drywall, Metal, Drywall],
                )
            }
            Environment::CorridorNarrow => Room::rectangular(
                "corridor-1.74m",
                30.0,
                1.74,
                [Drywall, Concrete, Drywall, Concrete],
            ),
            Environment::CorridorMedium => Room::rectangular(
                "corridor-3.2m",
                30.0,
                3.2,
                [Drywall, Concrete, Drywall, Concrete],
            ),
            Environment::CorridorWide => Room::rectangular(
                "corridor-6.2m",
                30.0,
                6.2,
                [Drywall, Concrete, Drywall, Concrete],
            ),
            Environment::LCorridor => {
                // Horizontal arm 18 × 2.5 m joining a vertical arm
                // 2.5 × 12.5 m at its east end (counter-clockwise).
                use Material::{Concrete, Drywall};
                let p = Point::new;
                Room::polygon(
                    "l-corridor",
                    &[
                        p(0.0, 0.0),
                        p(18.0, 0.0),
                        p(18.0, 15.0),
                        p(15.5, 15.0),
                        p(15.5, 2.5),
                        p(0.0, 2.5),
                    ],
                    &[Drywall, Concrete, Drywall, Drywall, Drywall, Concrete],
                )
            }
            Environment::Building1Corridor => {
                // Older building: brick walls, fewer reflective surfaces.
                Room::rectangular(
                    "building1-corridor",
                    35.0,
                    2.5,
                    [Brick, Brick, Brick, Brick],
                )
            }
            Environment::Building2OpenArea => {
                // Wide open area, much larger than the lobby.
                Room::rectangular(
                    "building2-open",
                    30.0,
                    22.0,
                    [Drywall, Concrete, Drywall, Glass],
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metal_reflects_better_than_brick() {
        assert!(Material::Metal.reflection_loss_db() < Material::Brick.reflection_loss_db());
    }

    #[test]
    fn rectangular_room_has_four_boundary_walls() {
        let r = Room::rectangular("t", 10.0, 5.0, [Material::Drywall; 4]);
        assert_eq!(r.walls.len(), 4);
        assert!(r.walls.iter().all(|w| !w.occluding));
        // Perimeter adds up.
        let perim: f64 = r.walls.iter().map(|w| w.segment.length()).sum();
        assert!((perim - 30.0).abs() < 1e-9);
    }

    #[test]
    fn interior_faces_occlude() {
        let r = Room::rectangular("t", 10.0, 5.0, [Material::Drywall; 4]).with_interior(
            Point::new(1.0, 1.0),
            Point::new(2.0, 1.0),
            Material::Metal,
        );
        assert_eq!(r.occluders().count(), 1);
    }

    #[test]
    fn all_environments_build() {
        for env in Environment::MAIN.iter().chain(Environment::TESTING.iter()) {
            let room = env.room();
            assert!(room.walls.len() >= 4, "{} lacks walls", env.name());
            assert!(room.width_m > 0.0 && room.depth_m > 0.0);
        }
    }

    #[test]
    fn corridor_widths_match_paper() {
        assert!((Environment::CorridorNarrow.room().depth_m - 1.74).abs() < 1e-9);
        assert!((Environment::CorridorMedium.room().depth_m - 3.2).abs() < 1e-9);
        assert!((Environment::CorridorWide.room().depth_m - 6.2).abs() < 1e-9);
    }

    #[test]
    fn lab_dimensions_match_paper() {
        let lab = Environment::Lab.room();
        assert!((lab.width_m - 11.8).abs() < 1e-9 && (lab.depth_m - 9.2).abs() < 1e-9);
    }
}

#[cfg(test)]
mod polygon_tests {
    use super::*;

    fn l_room() -> Room {
        Environment::LCorridor.room()
    }

    #[test]
    fn polygon_room_boundary_occludes() {
        let r = l_room();
        assert_eq!(r.n_boundary, 6);
        assert!(r.walls.iter().take(6).all(|w| w.occluding));
    }

    #[test]
    fn contains_distinguishes_arms_and_notch() {
        let r = l_room();
        // Horizontal arm.
        assert!(r.contains(Point::new(5.0, 1.25)));
        // Vertical arm.
        assert!(r.contains(Point::new(16.75, 10.0)));
        // The notch (outside the L).
        assert!(!r.contains(Point::new(5.0, 10.0)));
        // Fully outside the bounding box.
        assert!(!r.contains(Point::new(-3.0, 1.0)));
        assert!(!r.contains(Point::new(25.0, 1.0)));
    }

    #[test]
    fn contains_works_for_rectangles_too() {
        let r = Room::rectangular("t", 10.0, 5.0, [Material::Drywall; 4]);
        assert!(r.contains(Point::new(5.0, 2.5)));
        assert!(!r.contains(Point::new(11.0, 2.5)));
        assert!(!r.contains(Point::new(5.0, -1.0)));
    }

    #[test]
    #[should_panic(expected = "one material per edge")]
    fn polygon_validates_materials() {
        Room::polygon(
            "bad",
            &[
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
            ],
            &[Material::Drywall],
        );
    }
}
