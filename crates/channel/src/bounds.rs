//! Physical bounds on scenario parameters.
//!
//! The campaign plans of the paper are hand-written and trivially valid;
//! the scenario *search* of `libra-fuzz` mutates poses, blockers and
//! interferers programmatically and needs a machine-checkable definition
//! of "physically plausible". This module is that definition: nodes and
//! blockers stay inside the room with a wall clearance, link geometries
//! keep a minimum Tx–Rx separation, blocker discs and interferer powers
//! stay within human/hidden-terminal ranges, and per-state entity counts
//! stay bounded.
//!
//! Interferers are deliberately *not* confined to the room: the paper's
//! hidden terminal is a separate link that may sit in adjacent space
//! (the channel model attenuates it by distance, not by walls), so the
//! bound is a reach limit around the room's bounding box instead.

use crate::blockage::Blocker;
use crate::geometry::{Point, Pose};
use crate::interference::Interferer;
use crate::room::Room;

/// Bounds every generated or mutated scenario must satisfy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioBounds {
    /// Minimum clearance of nodes and blockers from boundary walls, m.
    pub wall_margin_m: f64,
    /// Minimum Tx–Rx separation, m (antennas cannot overlap).
    pub min_link_m: f64,
    /// Admissible blocker torso radius, m (min, max).
    pub blocker_radius_m: (f64, f64),
    /// Admissible blocker centre attenuation, dB (min, max).
    pub blocker_attenuation_db: (f64, f64),
    /// Admissible interferer EIRP toward the victim, dBm (min, max).
    pub interferer_eirp_dbm: (f64, f64),
    /// How far outside the room's bounding box an interferer may sit, m.
    pub interferer_reach_m: f64,
    /// Maximum blockers per state.
    pub max_blockers: usize,
    /// Maximum interferers per state.
    pub max_interferers: usize,
    /// Maximum new states per scenario.
    pub max_states: usize,
}

impl Default for ScenarioBounds {
    fn default() -> Self {
        Self {
            wall_margin_m: 0.3,
            min_link_m: 0.5,
            blocker_radius_m: (0.15, 0.45),
            blocker_attenuation_db: (5.0, 35.0),
            interferer_eirp_dbm: (-5.0, 20.0),
            interferer_reach_m: 6.0,
            max_blockers: 4,
            max_interferers: 2,
            // The paper's longest hand-written scenario (the narrow
            // corridor backward walk) has 16 new states; anything past
            // that is a runaway, not a plan.
            max_states: 16,
        }
    }
}

/// Minimum distance from `p` to any *boundary* wall of the room.
/// Interior furniture is ignored: a blocker may stand next to a cabinet.
pub fn wall_clearance(room: &Room, p: Point) -> f64 {
    room.walls
        .iter()
        .take(room.n_boundary)
        .map(|w| w.segment.distance_to_point(p))
        .fold(f64::INFINITY, f64::min)
}

impl ScenarioBounds {
    /// True when `p` lies inside the room with the wall margin.
    pub fn point_ok(&self, room: &Room, p: Point) -> bool {
        room.contains(p) && wall_clearance(room, p) >= self.wall_margin_m
    }

    /// True when a node pose is admissible (position only; any
    /// orientation is physical).
    pub fn pose_ok(&self, room: &Room, pose: Pose) -> bool {
        self.point_ok(room, pose.position)
    }

    /// True when a blocker is admissible: torso inside the room with the
    /// wall margin, disc and attenuation within human ranges.
    pub fn blocker_ok(&self, room: &Room, b: &Blocker) -> bool {
        self.point_ok(room, b.position)
            && (self.blocker_radius_m.0..=self.blocker_radius_m.1).contains(&b.radius_m)
            && (self.blocker_attenuation_db.0..=self.blocker_attenuation_db.1)
                .contains(&b.attenuation_db)
    }

    /// True when an interferer is admissible: within reach of the room's
    /// bounding box (rooms are anchored at the origin) with a plausible
    /// EIRP and a positive duty cycle.
    pub fn interferer_ok(&self, room: &Room, i: &Interferer) -> bool {
        let r = self.interferer_reach_m;
        let inside_reach = i.position.x >= -r
            && i.position.x <= room.width_m + r
            && i.position.y >= -r
            && i.position.y <= room.depth_m + r;
        inside_reach
            && (self.interferer_eirp_dbm.0..=self.interferer_eirp_dbm.1).contains(&i.eirp_dbm)
            && i.duty_cycle > 0.0
            && i.duty_cycle <= 1.0
    }

    /// True when a Tx/Rx geometry keeps the minimum link separation.
    pub fn link_ok(&self, tx: Point, rx: Point) -> bool {
        tx.distance(rx) >= self.min_link_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::room::{Environment, Material};

    fn rect() -> Room {
        Room::rectangular("t", 10.0, 5.0, [Material::Drywall; 4])
    }

    #[test]
    fn clearance_is_distance_to_nearest_wall() {
        let room = rect();
        let c = wall_clearance(&room, Point::new(1.0, 2.5));
        assert!((c - 1.0).abs() < 1e-9, "got {c}");
    }

    #[test]
    fn margin_rejects_wall_hugging_points() {
        let b = ScenarioBounds::default();
        let room = rect();
        assert!(b.point_ok(&room, Point::new(5.0, 2.5)));
        assert!(!b.point_ok(&room, Point::new(0.1, 2.5)));
        assert!(!b.point_ok(&room, Point::new(11.0, 2.5)));
    }

    #[test]
    fn polygon_rooms_are_supported() {
        let b = ScenarioBounds::default();
        let room = Environment::LCorridor.room();
        // Inside the horizontal arm.
        assert!(b.point_ok(&room, Point::new(5.0, 1.25)));
        // Inside the vertical arm.
        assert!(b.point_ok(&room, Point::new(16.75, 10.0)));
        // The inner corner region is outside the L.
        assert!(!b.point_ok(&room, Point::new(5.0, 10.0)));
    }

    #[test]
    fn blocker_bounds_check_disc_and_attenuation() {
        let b = ScenarioBounds::default();
        let room = rect();
        let ok = Blocker::human(Point::new(5.0, 2.5));
        assert!(b.blocker_ok(&room, &ok));
        let mut bad = ok;
        bad.attenuation_db = 60.0;
        assert!(!b.blocker_ok(&room, &bad));
        let mut bad = ok;
        bad.radius_m = 1.0;
        assert!(!b.blocker_ok(&room, &bad));
    }

    #[test]
    fn interferer_may_sit_outside_but_within_reach() {
        let b = ScenarioBounds::default();
        let room = rect();
        let near = Interferer {
            position: Point::new(12.0, -2.0),
            eirp_dbm: 10.0,
            duty_cycle: 1.0,
        };
        assert!(b.interferer_ok(&room, &near));
        let far = Interferer {
            position: Point::new(30.0, 2.0),
            ..near
        };
        assert!(!b.interferer_ok(&room, &far));
        let hot = Interferer {
            eirp_dbm: 40.0,
            ..near
        };
        assert!(!b.interferer_ok(&room, &hot));
    }

    #[test]
    fn link_separation() {
        let b = ScenarioBounds::default();
        assert!(b.link_ok(Point::new(0.0, 0.0), Point::new(1.0, 0.0)));
        assert!(!b.link_ok(Point::new(0.0, 0.0), Point::new(0.1, 0.0)));
    }
}
