//! Image-method ray tracing.
//!
//! Produces the set of geometric propagation paths between two points in a
//! room: the line-of-sight path plus first- and second-order specular
//! reflections off every reflective face. Each path carries its total
//! length, its departure/arrival bearings (for antenna-pattern weighting),
//! and the accumulated reflection loss. Occlusion by interior faces and by
//! human blockers is applied per path leg.
//!
//! 60 GHz channels are sparse — a handful of strong specular paths —
//! which is exactly what the image method yields, and why the paper
//! observes very high PDP similarity across states (§6.1: PDP similarity
//! "at least 0.9 in 68 % of the cases ... owing to the sparsity of 60 GHz
//! channels").

use crate::blockage::Blocker;
use crate::geometry::{Point, Segment};
use crate::room::{Room, Wall};
use serde::{Deserialize, Serialize};

/// Maximum reflection order traced (2 = up to double bounces).
pub const MAX_ORDER: usize = 2;

/// A single geometric propagation path between Tx and Rx.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RayPath {
    /// Total geometric length of the path, metres.
    pub length_m: f64,
    /// World bearing at which the path leaves the Tx, degrees.
    pub aod_deg: f64,
    /// World bearing from which the path arrives at the Rx (pointing from
    /// Rx toward the last bounce / the Tx), degrees.
    pub aoa_deg: f64,
    /// Accumulated loss beyond free space: reflection + penetration +
    /// blockage, dB.
    pub extra_loss_db: f64,
    /// Number of reflections (0 = LOS).
    pub order: usize,
}

impl RayPath {
    /// True for the direct (unreflected) path.
    pub fn is_los(&self) -> bool {
        self.order == 0
    }
}

/// Traces all paths from `tx` to `rx` in `room` with the given blockers.
///
/// Paths whose extra loss already exceeds `loss_cutoff_db` are discarded
/// (they cannot matter at any SNR the PHY distinguishes).
pub fn trace_paths(
    room: &Room,
    tx: Point,
    rx: Point,
    blockers: &[Blocker],
    loss_cutoff_db: f64,
) -> Vec<RayPath> {
    let mut paths = Vec::new();

    // LOS path.
    let los_block = leg_obstruction_db(room, blockers, tx, rx, &[]);
    if los_block < loss_cutoff_db {
        paths.push(RayPath {
            length_m: tx.distance(rx),
            aod_deg: tx.bearing_deg(rx),
            aoa_deg: rx.bearing_deg(tx),
            extra_loss_db: los_block,
            order: 0,
        });
    }

    // First-order reflections.
    for (wi, wall) in room.walls.iter().enumerate() {
        if let Some(path) = trace_single_bounce(room, blockers, tx, rx, wall, wi, loss_cutoff_db) {
            paths.push(path);
        }
    }

    // Second-order reflections (wall i then wall j, i != j).
    if MAX_ORDER >= 2 {
        for (wi, wall_i) in room.walls.iter().enumerate() {
            for (wj, wall_j) in room.walls.iter().enumerate() {
                if wi == wj {
                    continue;
                }
                if let Some(path) = trace_double_bounce(
                    room,
                    blockers,
                    tx,
                    rx,
                    (wall_i, wi),
                    (wall_j, wj),
                    loss_cutoff_db,
                ) {
                    paths.push(path);
                }
            }
        }
    }

    paths
}

/// Single specular bounce off `wall`.
fn trace_single_bounce(
    room: &Room,
    blockers: &[Blocker],
    tx: Point,
    rx: Point,
    wall: &Wall,
    wall_idx: usize,
    loss_cutoff_db: f64,
) -> Option<RayPath> {
    let image = wall.segment.mirror(tx);
    // The reflection point is where image→rx crosses the wall segment.
    let bounce = wall.segment.intersect(&Segment::new(image, rx))?;
    // Degenerate: Tx or Rx essentially on the wall.
    if bounce.distance(tx) < 1e-6 || bounce.distance(rx) < 1e-6 {
        return None;
    }
    let mut loss = wall.material.reflection_loss_db();
    loss += leg_obstruction_db(room, blockers, tx, bounce, &[wall_idx]);
    loss += leg_obstruction_db(room, blockers, bounce, rx, &[wall_idx]);
    if loss >= loss_cutoff_db {
        return None;
    }
    Some(RayPath {
        length_m: tx.distance(bounce) + bounce.distance(rx),
        aod_deg: tx.bearing_deg(bounce),
        aoa_deg: rx.bearing_deg(bounce),
        extra_loss_db: loss,
        order: 1,
    })
}

/// Double bounce: wall_i first, wall_j second.
fn trace_double_bounce(
    room: &Room,
    blockers: &[Blocker],
    tx: Point,
    rx: Point,
    (wall_i, wi): (&Wall, usize),
    (wall_j, wj): (&Wall, usize),
    loss_cutoff_db: f64,
) -> Option<RayPath> {
    let image1 = wall_i.segment.mirror(tx);
    let image2 = wall_j.segment.mirror(image1);
    // Second bounce: image2→rx crossing wall_j.
    let bounce2 = wall_j.segment.intersect(&Segment::new(image2, rx))?;
    // First bounce: image1→bounce2 crossing wall_i.
    let bounce1 = wall_i.segment.intersect(&Segment::new(image1, bounce2))?;
    if bounce1.distance(tx) < 1e-6
        || bounce2.distance(rx) < 1e-6
        || bounce1.distance(bounce2) < 1e-6
    {
        return None;
    }
    let mut loss = wall_i.material.reflection_loss_db() + wall_j.material.reflection_loss_db();
    loss += leg_obstruction_db(room, blockers, tx, bounce1, &[wi]);
    loss += leg_obstruction_db(room, blockers, bounce1, bounce2, &[wi, wj]);
    loss += leg_obstruction_db(room, blockers, bounce2, rx, &[wj]);
    if loss >= loss_cutoff_db {
        return None;
    }
    Some(RayPath {
        length_m: tx.distance(bounce1) + bounce1.distance(bounce2) + bounce2.distance(rx),
        aod_deg: tx.bearing_deg(bounce1),
        aoa_deg: rx.bearing_deg(bounce2),
        extra_loss_db: loss,
        order: 2,
    })
}

/// Total obstruction loss along one straight leg: penetration through any
/// occluding interior face it crosses plus diffraction loss around any
/// human blocker near the leg. Faces in `skip` (the reflecting walls of
/// this path) are exempt.
fn leg_obstruction_db(
    room: &Room,
    blockers: &[Blocker],
    from: Point,
    to: Point,
    skip: &[usize],
) -> f64 {
    let leg = Segment::new(from, to);
    let mut loss = 0.0;
    for (idx, wall) in room.walls.iter().enumerate() {
        if !wall.occluding || skip.contains(&idx) {
            continue;
        }
        if let Some(hit) = wall.segment.intersect(&leg) {
            // Ignore grazing hits at the leg endpoints (bounce points sit
            // exactly on their wall).
            if hit.distance(from) > 1e-6 && hit.distance(to) > 1e-6 {
                loss += wall.material.penetration_loss_db();
            }
        }
    }
    for blocker in blockers {
        loss += blocker.attenuation_db(&leg);
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::room::{Environment, Material, Room};

    fn empty_room() -> Room {
        Room::rectangular("t", 20.0, 10.0, [Material::Drywall; 4])
    }

    #[test]
    fn los_path_present_and_first() {
        let room = empty_room();
        let paths = trace_paths(
            &room,
            Point::new(2.0, 5.0),
            Point::new(12.0, 5.0),
            &[],
            60.0,
        );
        let los: Vec<_> = paths.iter().filter(|p| p.is_los()).collect();
        assert_eq!(los.len(), 1);
        assert!((los[0].length_m - 10.0).abs() < 1e-9);
        assert!((los[0].aod_deg - 0.0).abs() < 1e-9);
        assert!((los[0].aoa_deg.abs() - 180.0).abs() < 1e-9);
        assert_eq!(los[0].extra_loss_db, 0.0);
    }

    #[test]
    fn first_order_count_in_rectangle() {
        // In a rectangle both endpoints see each of the 4 walls → 4
        // single-bounce paths.
        let room = empty_room();
        let paths = trace_paths(&room, Point::new(2.0, 5.0), Point::new(12.0, 5.0), &[], 1e9);
        assert_eq!(paths.iter().filter(|p| p.order == 1).count(), 4);
    }

    #[test]
    fn reflection_geometry_correct() {
        // Tx (2,5), Rx (12,5), floor wall y=0: bounce at x where the
        // image (2,-5) to (12,5) crosses y=0 → x = 7, lengths 2·√(5²+5²).
        let room = empty_room();
        let paths = trace_paths(&room, Point::new(2.0, 5.0), Point::new(12.0, 5.0), &[], 1e9);
        let floor_bounce = paths
            .iter()
            .find(|p| p.order == 1 && p.aod_deg < 0.0)
            .expect("floor reflection");
        let expect = 2.0 * (25.0f64 + 25.0).sqrt();
        assert!((floor_bounce.length_m - expect).abs() < 1e-6);
        assert!((floor_bounce.aod_deg + 45.0).abs() < 1e-6);
    }

    #[test]
    fn reflection_longer_than_los() {
        let room = empty_room();
        let paths = trace_paths(&room, Point::new(2.0, 5.0), Point::new(12.0, 5.0), &[], 1e9);
        let los_len = paths.iter().find(|p| p.is_los()).unwrap().length_m;
        for p in paths.iter().filter(|p| p.order > 0) {
            assert!(p.length_m > los_len);
        }
    }

    #[test]
    fn second_order_paths_exist() {
        let room = empty_room();
        let paths = trace_paths(&room, Point::new(2.0, 5.0), Point::new(12.0, 5.0), &[], 1e9);
        assert!(paths.iter().any(|p| p.order == 2));
    }

    #[test]
    fn metal_reflection_cheaper_than_brick() {
        let metal = Room::rectangular("m", 20.0, 10.0, [Material::Metal; 4]);
        let brick = Room::rectangular("b", 20.0, 10.0, [Material::Brick; 4]);
        let tx = Point::new(2.0, 5.0);
        let rx = Point::new(12.0, 5.0);
        let pm = trace_paths(&metal, tx, rx, &[], 1e9);
        let pb = trace_paths(&brick, tx, rx, &[], 1e9);
        let lm = pm.iter().find(|p| p.order == 1).unwrap().extra_loss_db;
        let lb = pb.iter().find(|p| p.order == 1).unwrap().extra_loss_db;
        assert!(lm < lb);
    }

    #[test]
    fn interior_occluder_attenuates_los() {
        let room =
            empty_room().with_interior(Point::new(7.0, 3.0), Point::new(7.0, 7.0), Material::Metal);
        let paths = trace_paths(&room, Point::new(2.0, 5.0), Point::new(12.0, 5.0), &[], 1e9);
        let los = paths.iter().find(|p| p.is_los()).unwrap();
        assert!((los.extra_loss_db - Material::Metal.penetration_loss_db()).abs() < 1e-9);
    }

    #[test]
    fn loss_cutoff_prunes_paths() {
        let room = empty_room().with_interior(
            Point::new(7.0, 0.0),
            Point::new(7.0, 10.0),
            Material::Metal,
        );
        // Wall fully separates Tx/Rx: with a tight cutoff nothing survives.
        // (Asymmetric positions so no bounce grazes the wall's endpoint.)
        let paths = trace_paths(
            &room,
            Point::new(2.0, 5.0),
            Point::new(14.0, 4.0),
            &[],
            30.0,
        );
        assert!(paths.is_empty(), "survivors: {paths:?}");
    }

    #[test]
    fn environments_yield_multipath() {
        for env in Environment::MAIN {
            let room = env.room();
            let tx = Point::new(1.0, room.depth_m / 2.0);
            let rx = Point::new(room.width_m.min(10.0) - 1.0, room.depth_m / 2.0);
            let paths = trace_paths(&room, tx, rx, &[], 60.0);
            assert!(
                paths.len() >= 2,
                "{}: only {} paths",
                room.name,
                paths.len()
            );
        }
    }
}

#[cfg(test)]
mod corner_tests {
    use super::*;
    use crate::geometry::Point;
    use crate::room::{Environment, Material};

    #[test]
    fn same_arm_link_has_clear_los() {
        let room = Environment::LCorridor.room();
        let paths = trace_paths(
            &room,
            Point::new(1.0, 1.25),
            Point::new(12.0, 1.25),
            &[],
            60.0,
        );
        let los = paths
            .iter()
            .find(|p| p.is_los())
            .expect("LOS in a straight arm");
        assert_eq!(los.extra_loss_db, 0.0);
    }

    #[test]
    fn around_the_corner_los_is_penetration_charged() {
        let room = Environment::LCorridor.room();
        let tx = Point::new(1.0, 1.25);
        let rx = Point::new(16.75, 10.0); // up the vertical arm
        let paths = trace_paths(&room, tx, rx, &[], 120.0);
        let los = paths.iter().find(|p| p.is_los()).expect("penetrating LOS");
        assert!(
            los.extra_loss_db >= Material::Drywall.penetration_loss_db() - 1e-9,
            "corner must charge a wall penetration: {} dB",
            los.extra_loss_db
        );
    }

    #[test]
    fn corner_severely_weakens_the_link() {
        use crate::geometry::Pose;
        use crate::scene::Scene;
        use libra_arrays::Codebook;

        let room = Environment::LCorridor.room();
        let cb = Codebook::sibeam_25();
        let tx = Pose::new(Point::new(1.0, 1.25), 0.0);
        let same_arm = Scene::new(
            Environment::LCorridor.room(),
            tx,
            Pose::new(Point::new(14.0, 1.25), 180.0),
        );
        let around = Scene::new(room, tx, Pose::new(Point::new(16.75, 10.0), -90.0));
        // Best exhaustive-sweep SNR in both placements.
        let best = |scene: &Scene| {
            let rays = scene.rays();
            let mut best = f64::NEG_INFINITY;
            for (_, tb) in cb.iter() {
                for (_, rb) in cb.iter() {
                    best = best.max(scene.response_with_rays(&rays, tb, rb).snr_db);
                }
            }
            best
        };
        let snr_same = best(&same_arm);
        let snr_corner = best(&around);
        assert!(
            snr_same - snr_corner > 10.0,
            "corner should cost >10 dB: {snr_same} vs {snr_corner}"
        );
    }
}
