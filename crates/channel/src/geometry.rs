//! 2-D geometry primitives for the indoor ray tracer.
//!
//! The channel model works in a 2-D top-down view of each room (the
//! SiBeam array steers only in azimuth, and all the paper's scenarios are
//! horizontal displacements/rotations at a fixed antenna height). Points
//! are metres in a room-local frame; bearings are degrees,
//! counter-clockwise, with 0° along +x.

use serde::{Deserialize, Serialize};

/// A point (or vector) in the 2-D room plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// x coordinate, metres.
    pub x: f64,
    /// y coordinate, metres.
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Bearing from `self` toward `other`, degrees CCW from +x, in
    /// `(-180°, 180°]`.
    pub fn bearing_deg(self, other: Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x).to_degrees()
    }

    /// Component-wise subtraction, yielding the vector `self − other`.
    pub fn sub(self, other: Point) -> Point {
        Point::new(self.x - other.x, self.y - other.y)
    }

    /// Component-wise addition.
    pub fn add(self, other: Point) -> Point {
        Point::new(self.x + other.x, self.y + other.y)
    }

    /// Scalar multiplication.
    pub fn scale(self, k: f64) -> Point {
        Point::new(self.x * k, self.y * k)
    }

    /// Dot product, treating both points as vectors.
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product magnitude (z of the 3-D cross).
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }
}

/// A line segment between two points (a wall, a cabinet face, …).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Constructs a segment.
    pub const fn new(a: Point, b: Point) -> Self {
        Self { a, b }
    }

    /// Segment length in metres.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Mirrors a point across the infinite line through this segment —
    /// the "image" of the image method of ray tracing.
    pub fn mirror(&self, p: Point) -> Point {
        let d = self.b.sub(self.a);
        let len2 = d.dot(d);
        debug_assert!(len2 > 0.0, "degenerate segment");
        let t = p.sub(self.a).dot(d) / len2;
        let proj = self.a.add(d.scale(t));
        proj.add(proj.sub(p))
    }

    /// Intersection of this segment with the segment `other`, if the two
    /// properly intersect (touching at a shared endpoint counts).
    /// Returns the intersection point.
    pub fn intersect(&self, other: &Segment) -> Option<Point> {
        let r = self.b.sub(self.a);
        let s = other.b.sub(other.a);
        let denom = r.cross(s);
        let qp = other.a.sub(self.a);
        if denom.abs() < 1e-12 {
            // Parallel (collinear overlap is not treated as intersection —
            // a ray grazing along a wall does not reflect off it).
            return None;
        }
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let eps = 1e-9;
        if (-eps..=1.0 + eps).contains(&t) && (-eps..=1.0 + eps).contains(&u) {
            Some(self.a.add(r.scale(t)))
        } else {
            None
        }
    }

    /// Parameter `t ∈ [0,1]` of the point on this segment closest to `p`,
    /// and the distance from `p` to that closest point.
    pub fn closest_point(&self, p: Point) -> (f64, f64) {
        let d = self.b.sub(self.a);
        let len2 = d.dot(d);
        if len2 <= 0.0 {
            return (0.0, self.a.distance(p));
        }
        let t = (p.sub(self.a).dot(d) / len2).clamp(0.0, 1.0);
        let closest = self.a.add(d.scale(t));
        (t, closest.distance(p))
    }

    /// Minimum distance from point `p` to this segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).1
    }
}

/// A position plus antenna boresight orientation — the "state" geometry of
/// a Tx or Rx node (paper §5.1 defines a *state* as every position,
/// orientation, and impairment status).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Antenna position in the room, metres.
    pub position: Point,
    /// Boresight bearing, degrees CCW from +x.
    pub orientation_deg: f64,
}

impl Pose {
    /// Constructs a pose.
    pub const fn new(position: Point, orientation_deg: f64) -> Self {
        Self {
            position,
            orientation_deg,
        }
    }

    /// Converts a world bearing into this pose's antenna-local angle
    /// (0° = boresight), wrapped to `(-180°, 180°]`.
    pub fn local_angle_deg(&self, world_bearing_deg: f64) -> f64 {
        libra_arrays::pattern::wrap_deg(world_bearing_deg - self.orientation_deg)
    }

    /// The pose rotated by `delta_deg` in place.
    pub fn rotated(&self, delta_deg: f64) -> Pose {
        Pose::new(
            self.position,
            libra_arrays::pattern::wrap_deg(self.orientation_deg + delta_deg),
        )
    }

    /// The pose translated by `(dx, dy)` metres, orientation unchanged.
    pub fn translated(&self, dx: f64, dy: f64) -> Pose {
        Pose::new(
            Point::new(self.position.x + dx, self.position.y + dy),
            self.orientation_deg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn distance_345() {
        assert!(close(
            Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)),
            5.0
        ));
    }

    #[test]
    fn bearing_cardinals() {
        let o = Point::new(0.0, 0.0);
        assert!(close(o.bearing_deg(Point::new(1.0, 0.0)), 0.0));
        assert!(close(o.bearing_deg(Point::new(0.0, 1.0)), 90.0));
        assert!(close(o.bearing_deg(Point::new(-1.0, 0.0)), 180.0));
        assert!(close(o.bearing_deg(Point::new(0.0, -1.0)), -90.0));
    }

    #[test]
    fn mirror_across_x_axis() {
        let wall = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let img = wall.mirror(Point::new(3.0, 4.0));
        assert!(close(img.x, 3.0) && close(img.y, -4.0));
    }

    #[test]
    fn mirror_across_diagonal() {
        let wall = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let img = wall.mirror(Point::new(1.0, 0.0));
        assert!(close(img.x, 0.0) && close(img.y, 1.0));
    }

    #[test]
    fn segments_crossing_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let s2 = Segment::new(Point::new(0.0, 2.0), Point::new(2.0, 0.0));
        let p = s1.intersect(&s2).unwrap();
        assert!(close(p.x, 1.0) && close(p.y, 1.0));
    }

    #[test]
    fn segments_apart_do_not_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(1.0, 1.0));
        assert!(s1.intersect(&s2).is_none());
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let s2 = Segment::new(Point::new(0.0, 0.5), Point::new(1.0, 1.5));
        assert!(s1.intersect(&s2).is_none());
    }

    #[test]
    fn intersection_beyond_segment_end_rejected() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(2.0, -1.0), Point::new(2.0, 1.0));
        assert!(s1.intersect(&s2).is_none());
    }

    #[test]
    fn closest_point_on_interior() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let (t, d) = s.closest_point(Point::new(5.0, 3.0));
        assert!(close(t, 0.5) && close(d, 3.0));
    }

    #[test]
    fn closest_point_clamps_to_endpoint() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let (t, d) = s.closest_point(Point::new(-3.0, 4.0));
        assert!(close(t, 0.0) && close(d, 5.0));
    }

    #[test]
    fn pose_local_angle() {
        let pose = Pose::new(Point::new(0.0, 0.0), 90.0);
        assert!(close(pose.local_angle_deg(90.0), 0.0));
        assert!(close(pose.local_angle_deg(180.0), 90.0));
        assert!(close(pose.local_angle_deg(-90.0), 180.0));
    }

    #[test]
    fn pose_rotation_wraps() {
        let pose = Pose::new(Point::new(0.0, 0.0), 170.0).rotated(30.0);
        assert!(close(pose.orientation_deg, -160.0));
    }
}
