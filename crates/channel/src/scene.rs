//! Scene = room + node poses + impairments; and the per-beam-pair channel
//! observation the PHY consumes.
//!
//! [`Scene::response`] is the central entry point of the channel model:
//! given the Tx and Rx beam patterns it returns a [`BeamPairResponse`]
//! carrying the resolved multipath taps (delay + received power + angles),
//! the aggregate signal power, the effective noise floor including
//! directional interference, the SNR, and the time-of-flight — everything
//! the X60 logs per frame (§5.1: "SNR, Noise level, power delay profile
//! (PDP), codeword delivery ratio (CDR) ... We also measured offline the
//! time-of-flight (ToF)").

use crate::blockage::Blocker;
use crate::geometry::Pose;
use crate::interference::Interferer;
use crate::raytrace::{trace_paths, RayPath};
use crate::room::Room;
use libra_arrays::BeamPattern;
use libra_util::db::{friis_path_loss_db, noise_floor_dbm, sum_powers_dbm, SPEED_OF_LIGHT_M_PER_S};
use serde::{Deserialize, Serialize};

/// Extra-loss cutoff beyond which traced paths are discarded, dB.
const PATH_LOSS_CUTOFF_DB: f64 = 60.0;

/// Default transmit power of an X60-class node, dBm (power fed to the
/// array; antenna gain is added per beam).
pub const DEFAULT_TX_POWER_DBM: f64 = 10.0;

/// A resolved multipath tap at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tap {
    /// Propagation delay, nanoseconds.
    pub delay_ns: f64,
    /// Received power on this tap (Tx power + both antenna gains − path
    /// loss − extra losses), dBm.
    pub power_dbm: f64,
    /// Angle of departure in the Tx antenna's local frame, degrees.
    pub aod_local_deg: f64,
    /// Angle of arrival in the Rx antenna's local frame, degrees.
    pub aoa_local_deg: f64,
    /// Reflection order (0 = LOS).
    pub order: usize,
}

/// The channel observation for one Tx/Rx beam-pattern pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BeamPairResponse {
    /// Resolved taps, sorted by increasing delay.
    pub taps: Vec<Tap>,
    /// Aggregate received signal power, dBm.
    pub signal_power_dbm: f64,
    /// Thermal noise floor, dBm.
    pub thermal_noise_dbm: f64,
    /// Interference power leaking into this Rx beam, dBm
    /// (`NEG_INFINITY` when no interferer is active).
    pub interference_dbm: f64,
    /// Effective noise = thermal + interference, dBm. This is the "Noise
    /// level" PHY metric of §6.1.
    pub effective_noise_dbm: f64,
    /// Signal-to-(noise+interference) ratio, dB.
    pub snr_db: f64,
    /// Time of flight of the strongest tap, ns; `f64::INFINITY` when the
    /// signal is too weak to measure (paper §6.1.1: "X60 reports the ToF
    /// as infinity in cases of extremely weak signal").
    pub tof_ns: f64,
}

impl BeamPairResponse {
    /// What a sector sweep *measures* for this beam pair: the received
    /// power of the sounding frame **plus any co-channel interference
    /// leaking into the beam**, referenced to the thermal floor, in dB.
    ///
    /// An SLS cannot separate desired signal from interference within
    /// its short sounding window, so it ranks beams by total received
    /// power — which is why beam training under interference may pick a
    /// pair *pointing at the interferer*, and why the paper finds RA
    /// preferable in most interference cases.
    pub fn sweep_metric_db(&self) -> f64 {
        libra_util::db::sum_powers_dbm(&[self.signal_power_dbm, self.interference_dbm])
            - self.thermal_noise_dbm
    }

    /// Delay spread: RMS spread of tap delays weighted by linear power,
    /// ns. Zero for a single-tap channel. Feeds the ISI penalty of the
    /// PHY error model.
    pub fn rms_delay_spread_ns(&self) -> f64 {
        if self.taps.len() < 2 {
            return 0.0;
        }
        let powers: Vec<f64> = self
            .taps
            .iter()
            .map(|t| 10f64.powf(t.power_dbm / 10.0))
            .collect();
        let total: f64 = powers.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mean: f64 = self
            .taps
            .iter()
            .zip(&powers)
            .map(|(t, p)| t.delay_ns * p)
            .sum::<f64>()
            / total;
        let var: f64 = self
            .taps
            .iter()
            .zip(&powers)
            .map(|(t, p)| (t.delay_ns - mean) * (t.delay_ns - mean) * p)
            .sum::<f64>()
            / total;
        var.sqrt()
    }
}

/// SNR below which the receiver cannot lock at all: ToF becomes
/// unmeasurable ("infinity") and SNR reports are meaningless.
pub const SNR_MEASURABLE_FLOOR_DB: f64 = -5.0;

/// A complete physical scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scene {
    /// Room geometry.
    pub room: Room,
    /// Transmitter pose (the AP in downlink scenarios).
    pub tx: Pose,
    /// Receiver pose (the client).
    pub rx: Pose,
    /// Human blockers currently in the room.
    pub blockers: Vec<Blocker>,
    /// Active co-channel interferers.
    pub interferers: Vec<Interferer>,
    /// Transmit power fed to the Tx array, dBm.
    pub tx_power_dbm: f64,
}

impl Scene {
    /// A clear scene (no blockage, no interference) with default power.
    pub fn new(room: Room, tx: Pose, rx: Pose) -> Self {
        Self {
            room,
            tx,
            rx,
            blockers: Vec::new(),
            interferers: Vec::new(),
            tx_power_dbm: DEFAULT_TX_POWER_DBM,
        }
    }

    /// Returns a copy with the given blockers.
    pub fn with_blockers(mut self, blockers: Vec<Blocker>) -> Self {
        self.blockers = blockers;
        self
    }

    /// Returns a copy with the given interferers.
    pub fn with_interferers(mut self, interferers: Vec<Interferer>) -> Self {
        self.interferers = interferers;
        self
    }

    /// Geometric rays between Tx and Rx under the current impairments
    /// (beam-independent part of the computation, cacheable per state).
    pub fn rays(&self) -> Vec<RayPath> {
        trace_paths(
            &self.room,
            self.tx.position,
            self.rx.position,
            &self.blockers,
            PATH_LOSS_CUTOFF_DB,
        )
    }

    /// Computes the channel observation for a beam pair, reusing
    /// pre-traced rays (use [`Scene::rays`] once per state, then call this
    /// for all 625 beam pairs of an exhaustive sweep).
    pub fn response_with_rays(
        &self,
        rays: &[RayPath],
        tx_beam: &BeamPattern,
        rx_beam: &BeamPattern,
    ) -> BeamPairResponse {
        let mut taps: Vec<Tap> = rays
            .iter()
            .map(|ray| {
                let aod_local = self.tx.local_angle_deg(ray.aod_deg);
                let aoa_local = self.rx.local_angle_deg(ray.aoa_deg);
                let gain_tx = tx_beam.gain_dbi(aod_local);
                let gain_rx = rx_beam.gain_dbi(aoa_local);
                let power = self.tx_power_dbm + gain_tx + gain_rx
                    - friis_path_loss_db(ray.length_m.max(0.01))
                    - ray.extra_loss_db;
                Tap {
                    delay_ns: ray.length_m / SPEED_OF_LIGHT_M_PER_S * 1e9,
                    power_dbm: power,
                    aod_local_deg: aod_local,
                    aoa_local_deg: aoa_local,
                    order: ray.order,
                }
            })
            .collect();
        taps.sort_by(|a, b| a.delay_ns.partial_cmp(&b.delay_ns).expect("finite delays"));

        let signal_power_dbm =
            sum_powers_dbm(&taps.iter().map(|t| t.power_dbm).collect::<Vec<_>>());
        let thermal = noise_floor_dbm();
        let interference_dbm = sum_powers_dbm(
            &self
                .interferers
                .iter()
                .map(|i| i.power_at_rx_dbm(&self.rx, rx_beam))
                .collect::<Vec<_>>(),
        );
        let effective_noise_dbm = sum_powers_dbm(&[thermal, interference_dbm]);
        let snr_db = signal_power_dbm - effective_noise_dbm;

        let tof_ns = if snr_db < SNR_MEASURABLE_FLOOR_DB || taps.is_empty() {
            f64::INFINITY
        } else {
            taps.iter()
                .max_by(|a, b| {
                    a.power_dbm
                        .partial_cmp(&b.power_dbm)
                        .expect("finite powers")
                })
                .map(|t| t.delay_ns)
                .unwrap_or(f64::INFINITY)
        };

        BeamPairResponse {
            taps,
            signal_power_dbm,
            thermal_noise_dbm: thermal,
            interference_dbm,
            effective_noise_dbm,
            snr_db,
            tof_ns,
        }
    }

    /// Convenience wrapper: trace rays and compute the response in one
    /// call (per-beam-pair; prefer [`Scene::rays`] + `response_with_rays`
    /// in sweeps).
    pub fn response(&self, tx_beam: &BeamPattern, rx_beam: &BeamPattern) -> BeamPairResponse {
        self.response_with_rays(&self.rays(), tx_beam, rx_beam)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockage::BlockerPlacement;
    use crate::geometry::Point;
    use crate::interference::{InterferenceLevel, Interferer};
    use crate::room::{Environment, Material, Room};
    use libra_arrays::Codebook;

    fn corridor_scene(dist_m: f64) -> Scene {
        let room = Room::rectangular("t", 30.0, 3.0, [Material::Drywall; 4]);
        let tx = Pose::new(Point::new(1.0, 1.5), 0.0);
        let rx = Pose::new(Point::new(1.0 + dist_m, 1.5), 180.0);
        Scene::new(room, tx, rx)
    }

    fn boresight_pair(cb: &Codebook) -> (&BeamPattern, &BeamPattern) {
        (cb.beam(12), cb.beam(12))
    }

    #[test]
    fn close_los_link_has_high_snr() {
        let scene = corridor_scene(5.0);
        let cb = Codebook::sibeam_25();
        let (t, r) = boresight_pair(&cb);
        let resp = scene.response(t, r);
        assert!(resp.snr_db > 25.0, "snr {}", resp.snr_db);
        assert!(resp.tof_ns.is_finite());
    }

    #[test]
    fn snr_decreases_with_distance() {
        let cb = Codebook::sibeam_25();
        let (t, r) = boresight_pair(&cb);
        let s5 = corridor_scene(5.0).response(t, r).snr_db;
        let s15 = corridor_scene(15.0).response(t, r).snr_db;
        let s25 = corridor_scene(25.0).response(t, r).snr_db;
        assert!(s5 > s15 && s15 > s25);
    }

    #[test]
    fn tof_matches_los_distance() {
        let scene = corridor_scene(9.0);
        let cb = Codebook::sibeam_25();
        let (t, r) = boresight_pair(&cb);
        let resp = scene.response(t, r);
        let expect_ns = 9.0 / SPEED_OF_LIGHT_M_PER_S * 1e9; // ≈ 30 ns
        assert!((resp.tof_ns - expect_ns).abs() < 0.5, "tof {}", resp.tof_ns);
    }

    #[test]
    fn rotating_rx_away_drops_snr() {
        let cb = Codebook::sibeam_25();
        let (t, r) = boresight_pair(&cb);
        let aligned = corridor_scene(10.0);
        let mut rotated = corridor_scene(10.0);
        rotated.rx = rotated.rx.rotated(90.0);
        let drop = aligned.response(t, r).snr_db - rotated.response(t, r).snr_db;
        assert!(drop > 10.0, "rotation should cost >10 dB, got {drop}");
    }

    #[test]
    fn blockage_drops_snr_and_reflection_survives() {
        let cb = Codebook::sibeam_25();
        let (t, r) = boresight_pair(&cb);
        let clear = corridor_scene(10.0);
        let blocked = corridor_scene(10.0).with_blockers(vec![BlockerPlacement::MidPath.blocker(
            Point::new(1.0, 1.5),
            Point::new(11.0, 1.5),
            0.0,
        )]);
        let snr_clear = clear.response(t, r).snr_db;
        let snr_blocked = blocked.response(t, r).snr_db;
        assert!(snr_clear - snr_blocked > 5.0);
        // A wall-reflection beam pair should beat the blocked boresight
        // pair: sweep all pairs and check the best is off-boresight.
        let rays = blocked.rays();
        let mut best = f64::NEG_INFINITY;
        let mut best_pair = (0usize, 0usize);
        for (ti, tb) in cb.iter() {
            for (ri, rb) in cb.iter() {
                let snr = blocked.response_with_rays(&rays, tb, rb).snr_db;
                if snr > best {
                    best = snr;
                    best_pair = (ti, ri);
                }
            }
        }
        assert!(best > snr_blocked, "sweep should find a better pair");
        assert_ne!(
            best_pair,
            (12, 12),
            "best pair under blockage should not be boresight"
        );
    }

    #[test]
    fn interference_raises_noise_not_signal() {
        let cb = Codebook::sibeam_25();
        let (t, r) = boresight_pair(&cb);
        let clear = corridor_scene(10.0);
        let interfered = corridor_scene(10.0).with_interferers(vec![Interferer::at_level(
            Point::new(11.0, 2.8),
            InterferenceLevel::High,
        )]);
        let rc = clear.response(t, r);
        let ri = interfered.response(t, r);
        assert!((rc.signal_power_dbm - ri.signal_power_dbm).abs() < 1e-9);
        assert!(ri.effective_noise_dbm > rc.effective_noise_dbm + 3.0);
        assert!(ri.snr_db < rc.snr_db - 3.0);
    }

    #[test]
    fn weak_signal_reports_infinite_tof() {
        let cb = Codebook::sibeam_25();
        // Rx rotated fully away and at long distance, worst beams.
        let mut scene = corridor_scene(28.0);
        scene.rx = scene.rx.rotated(180.0); // facing away from Tx
        let resp = scene.response(cb.beam(0), cb.beam(24));
        if resp.snr_db < SNR_MEASURABLE_FLOOR_DB {
            assert!(resp.tof_ns.is_infinite());
        }
    }

    #[test]
    fn delay_spread_zero_for_single_tap() {
        let resp = BeamPairResponse {
            taps: vec![Tap {
                delay_ns: 10.0,
                power_dbm: -50.0,
                aod_local_deg: 0.0,
                aoa_local_deg: 0.0,
                order: 0,
            }],
            signal_power_dbm: -50.0,
            thermal_noise_dbm: -74.0,
            interference_dbm: f64::NEG_INFINITY,
            effective_noise_dbm: -74.0,
            snr_db: 24.0,
            tof_ns: 10.0,
        };
        assert_eq!(resp.rms_delay_spread_ns(), 0.0);
    }

    #[test]
    fn delay_spread_positive_for_multipath() {
        let scene = corridor_scene(10.0);
        let resp = scene.response(&BeamPattern::quasi_omni(), &BeamPattern::quasi_omni());
        assert!(resp.taps.len() >= 3);
        assert!(resp.rms_delay_spread_ns() > 0.0);
    }

    #[test]
    fn taps_sorted_by_delay() {
        let scene = corridor_scene(10.0);
        let resp = scene.response(&BeamPattern::quasi_omni(), &BeamPattern::quasi_omni());
        assert!(resp.taps.windows(2).all(|w| w[0].delay_ns <= w[1].delay_ns));
    }

    #[test]
    fn all_environments_support_a_link() {
        let cb = Codebook::sibeam_25();
        for env in Environment::MAIN {
            let room = env.room();
            let y = room.depth_m / 2.0;
            let tx = Pose::new(Point::new(0.5, y), 0.0);
            let rx = Pose::new(Point::new((room.width_m - 1.0).min(8.0), y), 180.0);
            let scene = Scene::new(room, tx, rx);
            let resp = scene.response(cb.beam(12), cb.beam(12));
            assert!(
                resp.snr_db > 10.0,
                "{}: boresight link too weak ({} dB)",
                env.name(),
                resp.snr_db
            );
        }
    }
}
