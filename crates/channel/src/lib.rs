//! # libra-channel
//!
//! A deterministic 60 GHz indoor channel simulator: the substrate standing
//! in for the X60 testbed's physical environment (paper §4).
//!
//! The model is a 2-D image-method ray tracer over polygonal rooms:
//!
//! * [`geometry`] — points, segments, poses; mirror/intersection math.
//! * [`room`] — walls with 60 GHz material properties and the environment
//!   catalogue of the paper's measurement campaign (lobby, lab,
//!   conference room, three corridors, plus the two held-out buildings of
//!   the testing dataset).
//! * [`raytrace`] — LOS + first/second-order specular paths with
//!   per-leg occlusion.
//! * [`blockage`] — human blockers with soft-shoulder attenuation and the
//!   three canonical placements of §4.2.
//! * [`interference`] — directional hidden-terminal interference at the
//!   three severities of §4.2, spatially filtered by the Rx beam.
//! * [`scene`] — ties everything together: [`Scene::response`] yields the
//!   multipath taps, SNR, noise level and ToF for any beam pair.
//! * [`bounds`] — physical bounds on scenario parameters (wall margins,
//!   blocker/interferer ranges) for programmatic scenario search.
//!
//! Everything is pure and deterministic: the same scene always produces
//! the same response. Stochastic measurement effects (thermal jitter,
//! per-frame variation) are added downstream in `libra-phy`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockage;
pub mod bounds;
pub mod geometry;
pub mod interference;
pub mod raytrace;
pub mod room;
pub mod scene;

pub use blockage::{Blocker, BlockerPlacement};
pub use bounds::{wall_clearance, ScenarioBounds};
pub use geometry::{Point, Pose, Segment};
pub use interference::{
    coupled_interference_dbm, noise_rise_db, ActiveTx, InterferenceLevel, Interferer,
};
pub use raytrace::RayPath;
pub use room::{Environment, Material, Room, Wall};
pub use scene::{BeamPairResponse, Scene, Tap};
