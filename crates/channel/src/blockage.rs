//! Human blockage model.
//!
//! A human body at 60 GHz is effectively opaque: measured blockage events
//! attenuate the direct path by 20–30 dB. We model a blocker as a disc
//! with a centre attenuation and a soft shoulder — a path passing through
//! the disc centre takes the full loss, and the loss rolls off linearly to
//! zero at the disc edge (a cheap stand-in for knife-edge diffraction).
//!
//! Paper §4.2 places blockers at three positions per scenario (mid-path,
//! near the Tx, near the Rx); §6.1.2 notes that even *partial* blockage
//! (SNR drops of only a few dB) almost always favours BA — the soft
//! shoulder makes partial blockage representable.

use crate::geometry::{Point, Segment};
use serde::{Deserialize, Serialize};

/// A human blocker standing in the room.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blocker {
    /// Torso centre position, metres.
    pub position: Point,
    /// Effective torso radius, metres (≈ 0.25 m for an adult).
    pub radius_m: f64,
    /// Attenuation of a ray through the torso centre, dB.
    pub attenuation_db: f64,
}

impl Blocker {
    /// A typical adult human: 0.25 m radius, 25 dB centre attenuation.
    pub fn human(position: Point) -> Self {
        Self {
            position,
            radius_m: 0.25,
            attenuation_db: 25.0,
        }
    }

    /// A human with custom severity (used for partial-blockage cases).
    pub fn human_with_attenuation(position: Point, attenuation_db: f64) -> Self {
        Self {
            position,
            radius_m: 0.25,
            attenuation_db,
        }
    }

    /// Attenuation this blocker imposes on a ray travelling along `leg`.
    ///
    /// Full `attenuation_db` when the leg passes through the centre,
    /// linear roll-off to 0 dB at `radius_m` of closest approach, and no
    /// effect beyond the radius.
    pub fn attenuation_db(&self, leg: &Segment) -> f64 {
        let (t, dist) = leg.closest_point(self.position);
        // A blocker standing essentially *at* an endpoint (the node
        // itself) does not block the node's own antenna: require the
        // closest approach to be interior to the leg.
        if !(0.001..=0.999).contains(&t) {
            return 0.0;
        }
        if dist >= self.radius_m {
            0.0
        } else {
            self.attenuation_db * (1.0 - dist / self.radius_m)
        }
    }
}

/// Canonical blocker placement of the measurement campaign (§4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockerPlacement {
    /// Standing in the middle of the LOS path.
    MidPath,
    /// Standing near (1 m from) the Tx.
    NearTx,
    /// Standing near (1 m from) the Rx.
    NearRx,
}

impl BlockerPlacement {
    /// All three placements.
    pub const ALL: [BlockerPlacement; 3] = [
        BlockerPlacement::MidPath,
        BlockerPlacement::NearTx,
        BlockerPlacement::NearRx,
    ];

    /// Short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            BlockerPlacement::MidPath => "mid",
            BlockerPlacement::NearTx => "near-tx",
            BlockerPlacement::NearRx => "near-rx",
        }
    }

    /// Materialises the blocker position on the Tx→Rx line.
    ///
    /// `lateral_offset_m` shifts the blocker perpendicular to the LOS —
    /// zero means dead centre (full blockage); a fraction of the torso
    /// radius yields partial blockage.
    pub fn blocker(self, tx: Point, rx: Point, lateral_offset_m: f64) -> Blocker {
        let d = rx.sub(tx);
        let len = tx.distance(rx).max(1e-9);
        let unit = d.scale(1.0 / len);
        let perp = Point::new(-unit.y, unit.x);
        let along = match self {
            BlockerPlacement::MidPath => len / 2.0,
            BlockerPlacement::NearTx => 1.0f64.min(len / 4.0),
            BlockerPlacement::NearRx => (len - 1.0).max(3.0 * len / 4.0),
        };
        let pos = tx.add(unit.scale(along)).add(perp.scale(lateral_offset_m));
        Blocker::human(pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dead_center_takes_full_loss() {
        let b = Blocker::human(Point::new(5.0, 0.0));
        let leg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert!((b.attenuation_db(&leg) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn outside_radius_no_loss() {
        let b = Blocker::human(Point::new(5.0, 0.5));
        let leg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(b.attenuation_db(&leg), 0.0);
    }

    #[test]
    fn partial_blockage_partial_loss() {
        let b = Blocker::human(Point::new(5.0, 0.125));
        let leg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let att = b.attenuation_db(&leg);
        assert!((att - 12.5).abs() < 1e-9, "got {att}");
    }

    #[test]
    fn blocker_behind_endpoint_ignored() {
        // Blocker sits past the Rx on the extension of the leg.
        let b = Blocker::human(Point::new(11.0, 0.0));
        let leg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(b.attenuation_db(&leg), 0.0);
    }

    #[test]
    fn placements_land_on_los() {
        let tx = Point::new(0.0, 0.0);
        let rx = Point::new(12.0, 0.0);
        let mid = BlockerPlacement::MidPath.blocker(tx, rx, 0.0);
        assert!((mid.position.x - 6.0).abs() < 1e-9);
        let near_tx = BlockerPlacement::NearTx.blocker(tx, rx, 0.0);
        assert!((near_tx.position.x - 1.0).abs() < 1e-9);
        let near_rx = BlockerPlacement::NearRx.blocker(tx, rx, 0.0);
        assert!((near_rx.position.x - 11.0).abs() < 1e-9);
    }

    #[test]
    fn lateral_offset_moves_perpendicular() {
        let tx = Point::new(0.0, 0.0);
        let rx = Point::new(10.0, 0.0);
        let b = BlockerPlacement::MidPath.blocker(tx, rx, 0.2);
        assert!((b.position.y - 0.2).abs() < 1e-9);
    }
}
