//! Property-based tests for the channel model: geometry identities and
//! physical invariants under randomized placements.

use libra_arrays::{BeamPattern, Codebook};
use libra_channel::{
    Blocker, Environment, InterferenceLevel, Interferer, Material, Point, Pose, Room, Scene,
    Segment,
};
use proptest::prelude::*;

fn rect_room() -> Room {
    Room::rectangular("prop", 20.0, 12.0, [Material::Drywall; 4])
}

proptest! {
    #[test]
    fn mirror_is_involution(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0,
        px in -10.0f64..10.0, py in -10.0f64..10.0,
    ) {
        prop_assume!((ax - bx).abs() > 1e-3 || (ay - by).abs() > 1e-3);
        let seg = Segment::new(Point::new(ax, ay), Point::new(bx, by));
        let p = Point::new(px, py);
        let back = seg.mirror(seg.mirror(p));
        prop_assert!((back.x - p.x).abs() < 1e-6 && (back.y - p.y).abs() < 1e-6);
    }

    #[test]
    fn mirror_preserves_distance_to_line(
        px in -10.0f64..10.0, py in 0.5f64..10.0,
    ) {
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let p = Point::new(px, py);
        let img = seg.mirror(p);
        prop_assert!((img.y + p.y).abs() < 1e-9, "reflection across y=0");
        prop_assert!((img.x - p.x).abs() < 1e-9);
    }

    #[test]
    fn bearing_reverses(ax in -5.0f64..5.0, ay in -5.0f64..5.0, bx in -5.0f64..5.0, by in -5.0f64..5.0) {
        prop_assume!((ax - bx).abs() > 1e-6 || (ay - by).abs() > 1e-6);
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let fwd = a.bearing_deg(b);
        let back = b.bearing_deg(a);
        let diff = libra_arrays::pattern::wrap_deg(fwd - back);
        prop_assert!((diff.abs() - 180.0).abs() < 1e-6);
    }

    #[test]
    fn signal_power_monotone_in_tx_power(
        rxx in 5.0f64..19.0, rxy in 1.0f64..11.0, bump in 0.1f64..20.0,
    ) {
        let cb = Codebook::sibeam_25();
        let mut s = Scene::new(
            rect_room(),
            Pose::new(Point::new(1.0, 6.0), 0.0),
            Pose::new(Point::new(rxx, rxy), 180.0),
        );
        let p1 = s.response(cb.beam(12), cb.beam(12)).signal_power_dbm;
        s.tx_power_dbm += bump;
        let p2 = s.response(cb.beam(12), cb.beam(12)).signal_power_dbm;
        prop_assert!((p2 - p1 - bump).abs() < 1e-9, "power shift exact in dB");
    }

    #[test]
    fn blocker_only_attenuates(
        rxx in 6.0f64..19.0,
        frac in 0.2f64..0.8,
        offset in 0.0f64..0.3,
    ) {
        let cb = Codebook::sibeam_25();
        let tx = Pose::new(Point::new(1.0, 6.0), 0.0);
        let rx = Pose::new(Point::new(rxx, 6.0), 180.0);
        let clear = Scene::new(rect_room(), tx, rx);
        let pos = Point::new(1.0 + (rxx - 1.0) * frac, 6.0 + offset);
        let blocked = Scene::new(rect_room(), tx, rx)
            .with_blockers(vec![Blocker::human(pos)]);
        let ps = clear.response(cb.beam(12), cb.beam(12)).signal_power_dbm;
        let pb = blocked.response(cb.beam(12), cb.beam(12)).signal_power_dbm;
        prop_assert!(pb <= ps + 1e-9, "blocker added power?! {ps} -> {pb}");
    }

    #[test]
    fn interference_never_lowers_noise(
        ix in 2.0f64..18.0, iy in 1.0f64..11.0,
        level in 0usize..3,
    ) {
        let cb = Codebook::sibeam_25();
        let tx = Pose::new(Point::new(1.0, 6.0), 0.0);
        let rx = Pose::new(Point::new(12.0, 6.0), 180.0);
        let clear = Scene::new(rect_room(), tx, rx);
        let noisy = Scene::new(rect_room(), tx, rx).with_interferers(vec![
            Interferer::at_level(Point::new(ix, iy), InterferenceLevel::ALL[level]),
        ]);
        let rc = clear.response(cb.beam(12), cb.beam(12));
        let rn = noisy.response(cb.beam(12), cb.beam(12));
        prop_assert!(rn.effective_noise_dbm >= rc.effective_noise_dbm - 1e-9);
        prop_assert!(rn.snr_db <= rc.snr_db + 1e-9);
        prop_assert!((rn.signal_power_dbm - rc.signal_power_dbm).abs() < 1e-9);
    }

    #[test]
    fn all_environments_trace_everywhere(
        env_idx in 0usize..8,
        fx in 0.1f64..0.9, fy in 0.15f64..0.85,
    ) {
        let envs: Vec<Environment> = Environment::MAIN
            .iter()
            .chain(Environment::TESTING.iter())
            .copied()
            .collect();
        let env = envs[env_idx];
        let room = env.room();
        let tx = Pose::new(Point::new(0.6, room.depth_m / 2.0), 0.0);
        let rx = Pose::new(
            Point::new(0.6 + (room.width_m - 1.2) * fx, room.depth_m * fy),
            180.0,
        );
        prop_assume!(tx.position.distance(rx.position) > 0.5);
        let scene = Scene::new(room, tx, rx);
        let rays = scene.rays();
        // Something always propagates within a closed room with a cutoff
        // of 60 dB — at minimum the LOS (possibly through furniture).
        prop_assert!(!rays.is_empty(), "{}: no paths", env.name());
        for r in &rays {
            prop_assert!(r.length_m.is_finite() && r.length_m > 0.0);
            prop_assert!(r.extra_loss_db >= 0.0);
        }
    }

    #[test]
    fn quasi_omni_response_no_weaker_than_worst_beam(
        rxx in 6.0f64..19.0, rxy in 2.0f64..10.0,
    ) {
        // Sanity tie between arrays and channel: quasi-omni reception
        // sits between the best and worst directional beams.
        let cb = Codebook::sibeam_25();
        let scene = Scene::new(
            rect_room(),
            Pose::new(Point::new(1.0, 6.0), 0.0),
            Pose::new(Point::new(rxx, rxy), 180.0),
        );
        let rays = scene.rays();
        let tx_beam = cb.beam(12);
        let quasi = scene
            .response_with_rays(&rays, tx_beam, &BeamPattern::quasi_omni())
            .signal_power_dbm;
        let mut best = f64::NEG_INFINITY;
        let mut worst = f64::INFINITY;
        for (_, rb) in cb.iter() {
            let p = scene.response_with_rays(&rays, tx_beam, rb).signal_power_dbm;
            best = best.max(p);
            worst = worst.min(p);
        }
        prop_assert!(quasi <= best + 1e-9, "quasi {quasi} > best {best}");
        prop_assert!(quasi >= worst - 1e-9, "quasi {quasi} < worst {worst}");
    }
}
