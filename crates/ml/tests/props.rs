//! Property-based tests for the ML library.

use libra_ml::{
    accuracy, confusion_matrix, weighted_f1, Classifier, Dataset, DecisionTree, ForestConfig,
    RandomForest, Standardizer, TreeConfig,
};
use libra_util::rng::{rng_from_seed, standard_normal};
use proptest::prelude::*;
use rand::Rng as _;

/// Random 2-class blobs with tunable separation.
fn blobs(n: usize, sep: f64, seed: u64) -> Dataset {
    let mut rng = rng_from_seed(seed);
    let mut features = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let c = i % 2;
        let off = if c == 0 { -sep } else { sep };
        features.push(vec![
            off + standard_normal(&mut rng),
            standard_normal(&mut rng),
        ]);
        labels.push(c);
    }
    Dataset::new(features, labels, 2, vec!["x".into(), "y".into()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fitted tree reproduces its training labels perfectly when
    /// unconstrained and the data has no duplicate-feature conflicts.
    #[test]
    fn tree_memorizes_separable_data(seed in 0u64..200) {
        let data = blobs(60, 10.0, seed); // far-separated blobs
        let mut tree = DecisionTree::new(TreeConfig { max_depth: 30, ..Default::default() });
        let mut rng = rng_from_seed(seed);
        tree.fit(&data, &mut rng);
        let acc = accuracy(&data.labels, &tree.predict_view(&data.view()));
        prop_assert!(acc > 0.99, "training accuracy {acc}");
    }

    /// Tree predictions are always valid class indices.
    #[test]
    fn tree_predicts_valid_classes(seed in 0u64..100, x in -100.0f64..100.0, y in -100.0f64..100.0) {
        let data = blobs(40, 1.0, seed);
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = rng_from_seed(seed);
        tree.fit(&data, &mut rng);
        prop_assert!(tree.predict_one(&[x, y]) < 2);
    }

    /// Forest class probabilities form a simplex.
    #[test]
    fn forest_probabilities_simplex(seed in 0u64..50, x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let data = blobs(50, 2.0, seed);
        let mut rf = RandomForest::new(ForestConfig { n_trees: 8, ..Default::default() });
        let mut rng = rng_from_seed(seed);
        rf.fit(&data, &mut rng);
        let p = rf.predict_proba_one(&[x, y]);
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Gini importances are a probability vector over features.
    #[test]
    fn importances_are_distribution(seed in 0u64..50) {
        let data = blobs(60, 2.0, seed);
        let mut rf = RandomForest::new(ForestConfig { n_trees: 10, ..Default::default() });
        let mut rng = rng_from_seed(seed);
        rf.fit(&data, &mut rng);
        let imp = rf.feature_importances();
        prop_assert!(imp.iter().all(|&v| v >= 0.0));
        let sum: f64 = imp.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0);
    }

    /// Standardization is invertible in distribution: transforming twice
    /// with the same fitted standardizer is idempotent on stats.
    #[test]
    fn standardizer_idempotent_stats(seed in 0u64..50) {
        let data = blobs(80, 3.0, seed);
        let s = Standardizer::fit(&data);
        let t1 = s.transform(&data);
        let s2 = Standardizer::fit(&t1);
        let t2 = s2.transform(&t1);
        let (m1, sd1) = t1.column_stats();
        let (m2, sd2) = t2.column_stats();
        for i in 0..2 {
            prop_assert!((m1[i] - m2[i]).abs() < 1e-9);
            prop_assert!((sd1[i] - sd2[i]).abs() < 1e-9);
        }
    }

    /// Accuracy and weighted F1 agree at the extremes.
    #[test]
    fn metrics_extremes(labels in prop::collection::vec(0usize..3, 1..50)) {
        let acc = accuracy(&labels, &labels);
        prop_assert_eq!(acc, 1.0);
        prop_assert!((weighted_f1(&labels, &labels, 3) - 1.0).abs() < 1e-12);
    }

    /// Confusion matrix row sums equal per-class support.
    #[test]
    fn confusion_rows_sum_to_support(
        truth in prop::collection::vec(0usize..3, 1..60),
        seed in 0u64..100,
    ) {
        let mut rng = rng_from_seed(seed);
        let pred: Vec<usize> = truth.iter().map(|_| rng.gen_range(0..3)).collect();
        let m = confusion_matrix(&truth, &pred, 3);
        for c in 0..3 {
            let support = truth.iter().filter(|&&t| t == c).count();
            let row: usize = m[c].iter().sum();
            prop_assert_eq!(row, support);
        }
    }

    /// Stratified folds: every fold's class ratio is within one sample
    /// of the global ratio.
    #[test]
    fn folds_stratified(seed in 0u64..100, k in 2usize..6) {
        let data = blobs(60, 1.0, seed);
        let mut rng = rng_from_seed(seed);
        let folds = data.stratified_folds(k, &mut rng);
        for fold in &folds {
            let c0 = fold.iter().filter(|&&i| data.labels[i] == 0).count();
            let c1 = fold.len() - c0;
            prop_assert!((c0 as i64 - c1 as i64).abs() <= 1, "fold {c0}/{c1}");
        }
    }
}
