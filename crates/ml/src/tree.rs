//! CART decision trees with Gini or entropy impurity.
//!
//! The paper tries decision trees "with two impurity measures: Gini index
//! and entropy" and limits maximum depth to reduce overfitting (§6.2).
//! This implementation supports both impurities, depth and
//! min-samples-split limits, per-split feature subsampling (for random
//! forests), and Gini importance accounting (Table 3).
//!
//! Training is columnar: the fit entry point gathers the incoming
//! [`FrameView`] into a [`ColMatrix`] (column-major, one contiguous
//! allocation) once, so every split search sorts and partitions a
//! contiguous column slice instead of chasing per-row allocations.

use crate::data::FrameView;
use libra_obs as obs;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Column-major training matrix: `cols[f * n_rows + i]` is feature `f`
/// of row `i`, with labels alongside. Built once per fit from a
/// [`FrameView`]; split finding then scans contiguous column slices.
/// Shared with the GBDT regression trees.
pub(crate) struct ColMatrix {
    cols: Vec<f64>,
    labels: Vec<usize>,
    n_rows: usize,
    n_cols: usize,
}

impl ColMatrix {
    /// Gathers a view into column-major storage (the only copy the
    /// training path makes).
    pub(crate) fn from_view(data: &FrameView<'_>) -> Self {
        let n_rows = data.len();
        let n_cols = data.n_features();
        let mut cols = Vec::with_capacity(n_rows * n_cols);
        for f in 0..n_cols {
            for i in 0..n_rows {
                cols.push(data.value(i, f));
            }
        }
        Self {
            cols,
            labels: data.labels_vec(),
            n_rows,
            n_cols,
        }
    }

    /// Number of rows.
    pub(crate) fn len(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub(crate) fn n_features(&self) -> usize {
        self.n_cols
    }

    /// Label of row `i`.
    pub(crate) fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Contiguous slice of feature column `f`.
    pub(crate) fn col(&self, f: usize) -> &[f64] {
        &self.cols[f * self.n_rows..(f + 1) * self.n_rows]
    }

    /// Feature value at (`row`, `col`).
    pub(crate) fn value(&self, row: usize, col: usize) -> f64 {
        self.cols[col * self.n_rows + row]
    }
}

/// Split-quality criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Impurity {
    /// Gini index `1 − Σ p²`.
    Gini,
    /// Shannon entropy `−Σ p·log2 p`.
    Entropy,
}

impl Impurity {
    fn of(self, counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let n = total as f64;
        match self {
            Impurity::Gini => 1.0 - counts.iter().map(|&c| (c as f64 / n).powi(2)).sum::<f64>(),
            Impurity::Entropy => -counts
                .iter()
                .filter(|&&c| c > 0)
                .map(|&c| {
                    let p = c as f64 / n;
                    p * p.log2()
                })
                .sum::<f64>(),
        }
    }
}

/// Tree hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Impurity criterion.
    pub impurity: Impurity,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer rows than this.
    pub min_samples_split: usize,
    /// Features considered per split; `None` = all (plain tree),
    /// `Some(k)` = a random subset of `k` (random forest member).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            impurity: Impurity::Gini,
            max_depth: 8,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

/// One node of a fitted tree in the flat, index-linked export form
/// produced by [`DecisionTree::dump_nodes`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DumpNode {
    /// A leaf.
    Leaf {
        /// Class-probability distribution at the leaf.
        probs: Vec<f64>,
    },
    /// An internal split; `row[feature] <= threshold` goes left.
    Split {
        /// Feature column tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Index of the left child in the dump vector.
        left: usize,
        /// Index of the right child in the dump vector.
        right: usize,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Class probability distribution at the leaf.
        probs: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART decision tree classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    config: TreeConfig,
    root: Option<Node>,
    n_classes: usize,
    /// Unnormalized Gini-importance accumulator per feature.
    importances: Vec<f64>,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(config: TreeConfig) -> Self {
        Self {
            config,
            root: None,
            n_classes: 0,
            importances: Vec::new(),
        }
    }

    /// Fits the tree on a frame or view. `rng` is only consumed when
    /// `max_features` asks for feature subsampling.
    pub fn fit<'a>(&mut self, data: impl Into<FrameView<'a>>, rng: &mut impl Rng) {
        let _span = obs::span("ml.tree.fit");
        let data = data.into();
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        self.n_classes = data.n_classes();
        self.importances = vec![0.0; data.n_features()];
        let cm = ColMatrix::from_view(&data);
        let idx: Vec<usize> = (0..cm.len()).collect();
        let total = cm.len();
        self.root = Some(self.build(&cm, idx, 0, total, rng));
    }

    fn build(
        &mut self,
        cm: &ColMatrix,
        idx: Vec<usize>,
        depth: usize,
        total: usize,
        rng: &mut impl Rng,
    ) -> Node {
        obs::counter("ml.tree.nodes", 1);
        let counts = class_counts(cm, &idx, self.n_classes);
        let node_impurity = self.config.impurity.of(&counts, idx.len());
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= self.config.max_depth || idx.len() < self.config.min_samples_split {
            return leaf(&counts, idx.len());
        }

        let n_features = cm.n_features();
        let mut feats: Vec<usize> = (0..n_features).collect();
        if let Some(k) = self.config.max_features {
            feats.shuffle(rng);
            feats.truncate(k.clamp(1, n_features));
        }

        obs::counter("ml.tree.split_scans", feats.len() as u64);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted child impurity)
        for &f in &feats {
            if let Some((thr, child_imp)) =
                best_split_on(cm, &idx, f, self.config.impurity, self.n_classes)
            {
                if best.as_ref().map_or(true, |&(_, _, bi)| child_imp < bi) {
                    best = Some((f, thr, child_imp));
                }
            }
        }

        let Some((feature, threshold, child_impurity)) = best else {
            return leaf(&counts, idx.len());
        };
        // Zero-gain splits are allowed (scikit-learn semantics with
        // min_impurity_decrease = 0): XOR-like structure has zero
        // single-feature gain at the root yet is perfectly separable two
        // levels down. Negative "gain" can only be rounding noise.
        self.importances[feature] +=
            (idx.len() as f64 / total as f64 * (node_impurity - child_impurity)).max(0.0);

        let col = cm.col(feature);
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| col[i] <= threshold);
        let left = Box::new(self.build(cm, li, depth + 1, total, rng));
        let right = Box::new(self.build(cm, ri, depth + 1, total, rng));
        Node::Split {
            feature,
            threshold,
            left,
            right,
        }
    }

    /// Class-probability estimate for one row (leaf class distribution).
    pub fn predict_proba_one(&self, row: &[f64]) -> Vec<f64> {
        let mut node = self.root.as_ref().expect("tree not fitted");
        loop {
            match node {
                Node::Leaf { probs } => return probs.clone(),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predicted class for one row. Batch prediction lives on the
    /// [`crate::Classifier`] trait — the single serving surface.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        argmax(&self.predict_proba_one(row))
    }

    /// Normalized Gini feature importances (sum to 1 unless the tree is a
    /// single leaf, in which case all are 0).
    pub fn feature_importances(&self) -> Vec<f64> {
        let total: f64 = self.importances.iter().sum();
        if total <= 0.0 {
            return self.importances.clone();
        }
        self.importances.iter().map(|&v| v / total).collect()
    }

    /// Number of classes the tree was fitted on.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Exports the fitted tree as a flat, index-linked node list in
    /// pre-order (node 0 is the root) — the raw material inference
    /// engines compile from. Panics if the tree is unfitted.
    pub fn dump_nodes(&self) -> Vec<DumpNode> {
        fn walk(node: &Node, out: &mut Vec<DumpNode>) -> usize {
            match node {
                Node::Leaf { probs } => {
                    out.push(DumpNode::Leaf {
                        probs: probs.clone(),
                    });
                    out.len() - 1
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let at = out.len();
                    out.push(DumpNode::Split {
                        feature: *feature,
                        threshold: *threshold,
                        left: 0,
                        right: 0,
                    });
                    let li = walk(left, out);
                    let ri = walk(right, out);
                    if let DumpNode::Split { left, right, .. } = &mut out[at] {
                        *left = li;
                        *right = ri;
                    }
                    at
                }
            }
        }
        let root = self.root.as_ref().expect("tree not fitted");
        let mut out = Vec::new();
        walk(root, &mut out);
        out
    }

    /// Depth of the fitted tree (leaf-only tree = 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        self.root.as_ref().map_or(0, d)
    }
}

fn leaf(counts: &[usize], n: usize) -> Node {
    let n = n.max(1) as f64;
    Node::Leaf {
        probs: counts.iter().map(|&c| c as f64 / n).collect(),
    }
}

fn class_counts(cm: &ColMatrix, idx: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in idx {
        counts[cm.label(i)] += 1;
    }
    counts
}

/// Finds the best threshold on feature `f` over rows `idx`; returns
/// `(threshold, weighted child impurity)` or `None` when the column is
/// constant. The column is a contiguous slice, so the sort and the
/// sweep below touch one cache-friendly run of memory.
fn best_split_on(
    cm: &ColMatrix,
    idx: &[usize],
    f: usize,
    impurity: Impurity,
    n_classes: usize,
) -> Option<(f64, f64)> {
    let col = cm.col(f);
    let mut order: Vec<usize> = idx.to_vec();
    order.sort_by(|&a, &b| col[a].partial_cmp(&col[b]).expect("no NaN features"));

    let n = order.len();
    let mut left_counts = vec![0usize; n_classes];
    let mut right_counts = vec![0usize; n_classes];
    for &i in &order {
        right_counts[cm.label(i)] += 1;
    }

    let mut best: Option<(f64, f64)> = None;
    for k in 0..n - 1 {
        let i = order[k];
        left_counts[cm.label(i)] += 1;
        right_counts[cm.label(i)] -= 1;
        let v = col[i];
        let v_next = col[order[k + 1]];
        if v == v_next {
            continue; // threshold must separate distinct values
        }
        let nl = k + 1;
        let nr = n - nl;
        let wi = (nl as f64 * impurity.of(&left_counts, nl)
            + nr as f64 * impurity.of(&right_counts, nr))
            / n as f64;
        // Midpoint threshold; guards against infinities producing NaN.
        let thr = if v.is_finite() && v_next.is_finite() {
            (v + v_next) / 2.0
        } else {
            v
        };
        if best.as_ref().map_or(true, |&(_, bw)| wi < bw) {
            best = Some((thr, wi));
        }
    }
    best
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use crate::data::Dataset;
    use libra_util::rng::rng_from_seed;

    fn xor_dataset() -> Dataset {
        // Exact XOR (each corner repeated) — not linearly separable and
        // zero single-feature gain at the root, but depth-2 separable.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            features.push(vec![a, b]);
            labels.push(((a as usize) ^ (b as usize)) as usize);
        }
        Dataset::new(features, labels, 2, vec!["a".into(), "b".into()])
    }

    #[test]
    fn learns_xor() {
        let mut tree = DecisionTree::new(TreeConfig::default());
        let data = xor_dataset();
        let mut rng = rng_from_seed(1);
        tree.fit(&data, &mut rng);
        let pred = tree.predict_view(&data.view());
        assert_eq!(crate::metrics::accuracy(&data.labels, &pred), 1.0);
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn respects_max_depth() {
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 1,
            ..Default::default()
        });
        let data = xor_dataset();
        let mut rng = rng_from_seed(2);
        tree.fit(&data, &mut rng);
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let data = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![1, 1, 1],
            2,
            vec!["x".into()],
        );
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = rng_from_seed(3);
        tree.fit(&data, &mut rng);
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict_one(&[5.0]), 1);
    }

    #[test]
    fn importances_sum_to_one_and_favor_informative_feature() {
        // Feature 0 fully determines the label, feature 1 is noise.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            features.push(vec![c as f64, ((i * 7) % 13) as f64]);
            labels.push(c);
        }
        let data = Dataset::new(features, labels, 2, vec!["signal".into(), "noise".into()]);
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = rng_from_seed(4);
        tree.fit(&data, &mut rng);
        let imp = tree.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > 0.99, "importances {imp:?}");
    }

    #[test]
    fn entropy_impurity_also_learns() {
        let mut tree = DecisionTree::new(TreeConfig {
            impurity: Impurity::Entropy,
            ..Default::default()
        });
        let data = xor_dataset();
        let mut rng = rng_from_seed(5);
        tree.fit(&data, &mut rng);
        let pred = tree.predict_view(&data.view());
        assert_eq!(crate::metrics::accuracy(&data.labels, &pred), 1.0);
    }

    #[test]
    fn impurity_values() {
        assert!((Impurity::Gini.of(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(Impurity::Gini.of(&[10, 0], 10), 0.0);
        assert!((Impurity::Entropy.of(&[5, 5], 10) - 1.0).abs() < 1e-12);
        assert_eq!(Impurity::Entropy.of(&[0, 7], 7), 0.0);
    }

    #[test]
    fn handles_infinite_feature_values() {
        // ToF differences can be ±∞ in the real pipeline when sanitized
        // as large sentinels; the raw tree must survive ±inf too.
        let data = Dataset::new(
            vec![
                vec![f64::NEG_INFINITY],
                vec![0.0],
                vec![f64::INFINITY],
                vec![1.0],
            ],
            vec![0, 0, 1, 1],
            2,
            vec!["tof".into()],
        );
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = rng_from_seed(6);
        tree.fit(&data, &mut rng);
        assert_eq!(tree.predict_one(&[f64::INFINITY]), 1);
        assert_eq!(tree.predict_one(&[f64::NEG_INFINITY]), 0);
    }

    #[test]
    fn fitting_a_view_matches_fitting_its_materialization() {
        let data = xor_dataset();
        let idx: Vec<usize> = (0..data.len()).rev().collect();
        let owned = data.subset(&idx);
        let fit_on_view = {
            let mut tree = DecisionTree::new(TreeConfig::default());
            let mut rng = rng_from_seed(9);
            tree.fit(data.select(&idx), &mut rng);
            (tree.predict_view(&data.view()), tree.feature_importances())
        };
        let fit_on_owned = {
            let mut tree = DecisionTree::new(TreeConfig::default());
            let mut rng = rng_from_seed(9);
            tree.fit(&owned, &mut rng);
            (tree.predict_view(&data.view()), tree.feature_importances())
        };
        assert_eq!(fit_on_view, fit_on_owned);
    }

    #[test]
    fn dump_nodes_replays_predictions() {
        let data = xor_dataset();
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = rng_from_seed(8);
        tree.fit(&data, &mut rng);
        let dump = tree.dump_nodes();
        assert!(
            matches!(dump[0], DumpNode::Split { .. }),
            "xor tree must split at the root"
        );
        let walk = |row: &[f64]| -> usize {
            let mut i = 0usize;
            loop {
                match &dump[i] {
                    DumpNode::Leaf { probs } => return argmax(probs),
                    DumpNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        i = if row[*feature] <= *threshold {
                            *left
                        } else {
                            *right
                        };
                    }
                }
            }
        };
        for row in data.rows() {
            assert_eq!(walk(row), tree.predict_one(row));
        }
    }

    #[test]
    fn three_class_probabilities() {
        let data = Dataset::new(
            vec![
                vec![0.0],
                vec![0.1],
                vec![1.0],
                vec![1.1],
                vec![2.0],
                vec![2.1],
            ],
            vec![0, 0, 1, 1, 2, 2],
            3,
            vec!["x".into()],
        );
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = rng_from_seed(7);
        tree.fit(&data, &mut rng);
        let p = tree.predict_proba_one(&[2.05]);
        assert_eq!(p.len(), 3);
        assert_eq!(argmax(&p), 2);
    }
}
