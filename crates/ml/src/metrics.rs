//! Classification quality metrics: accuracy, per-class precision/recall/
//! F1, the *weighted* F1 the paper reports (§6.2), and confusion
//! matrices.

/// Fraction of predictions matching the truth.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len());
    if truth.is_empty() {
        return f64::NAN;
    }
    let hits = truth.iter().zip(pred).filter(|(t, p)| t == p).count();
    hits as f64 / truth.len() as f64
}

/// Confusion matrix: `m[t][p]` counts rows with truth `t` predicted `p`.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), pred.len());
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        m[t][p] += 1;
    }
    m
}

/// Per-class F1 scores.
pub fn f1_per_class(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<f64> {
    let m = confusion_matrix(truth, pred, n_classes);
    (0..n_classes)
        .map(|c| {
            let tp = m[c][c] as f64;
            let fp: f64 = (0..n_classes)
                .filter(|&t| t != c)
                .map(|t| m[t][c] as f64)
                .sum();
            let fn_: f64 = (0..n_classes)
                .filter(|&p| p != c)
                .map(|p| m[c][p] as f64)
                .sum();
            if tp == 0.0 {
                0.0
            } else {
                let prec = tp / (tp + fp);
                let rec = tp / (tp + fn_);
                2.0 * prec * rec / (prec + rec)
            }
        })
        .collect()
}

/// Weighted F1: per-class F1 averaged with class-support weights — the
/// "weighted F1 score" of §6.2 (scikit-learn's `average='weighted'`).
pub fn weighted_f1(truth: &[usize], pred: &[usize], n_classes: usize) -> f64 {
    if truth.is_empty() {
        return f64::NAN;
    }
    let f1 = f1_per_class(truth, pred, n_classes);
    let mut support = vec![0usize; n_classes];
    for &t in truth {
        support[t] += 1;
    }
    let total = truth.len() as f64;
    f1.iter()
        .zip(&support)
        .map(|(f, &s)| f * s as f64 / total)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]), 0.75);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0], 2);
        assert_eq!(m, vec![vec![1, 1], vec![1, 2]]);
    }

    #[test]
    fn perfect_prediction_f1_one() {
        let truth = [0, 1, 2, 0, 1, 2];
        let f1 = weighted_f1(&truth, &truth, 3);
        assert!((f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_wrong_f1_zero() {
        let truth = [0, 0, 1, 1];
        let pred = [1, 1, 0, 0];
        assert_eq!(weighted_f1(&truth, &pred, 2), 0.0);
    }

    #[test]
    fn weighted_f1_weights_by_support() {
        // Class 0: 8 rows all correct (F1 = 1); class 1: 2 rows all
        // missed (F1 = 0) → weighted F1 < macro would be 0.5, here 0.8·1.
        let truth = [0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        let pred = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
        let w = weighted_f1(&truth, &pred, 2);
        // class 0: prec 8/10, rec 1 → F1 = 16/18 = 0.888…, weight 0.8
        assert!((w - 0.8 * (16.0 / 18.0)).abs() < 1e-9, "{w}");
    }

    #[test]
    fn f1_handles_absent_predicted_class() {
        let truth = [0, 1];
        let pred = [0, 0];
        let f1 = f1_per_class(&truth, &pred, 2);
        assert_eq!(f1[1], 0.0);
    }
}
