//! Model-agnostic evaluation: the `Model` trait, repeated stratified
//! k-fold cross validation (the paper's protocol: stratified 5-fold,
//! repeated with random splits, reporting accuracy and weighted F1), and
//! train-on-A / test-on-B evaluation for the cross-building study.

use crate::classify::Classifier;
use crate::data::{Dataset, FrameView};
use crate::forest::{ForestConfig, RandomForest};
use crate::gbdt::{GbdtClassifier, GbdtConfig};
use crate::knn::{KnnClassifier, KnnConfig};
use crate::metrics::{accuracy, weighted_f1};
use crate::nn::{NeuralNet, NnConfig};
use crate::svm::{SvmClassifier, SvmConfig};
use crate::tree::{DecisionTree, TreeConfig};
use libra_util::par::par_map;
use libra_util::rng::{derive_seed, derive_seed_index, rng_from_seed};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A trainable classifier, object-safe so harnesses can sweep models.
/// Training consumes zero-copy [`FrameView`] borrows, so fold cells
/// never materialize cloned sub-datasets; prediction comes from the
/// [`Classifier`] supertrait — the single serving surface.
pub trait Model: Classifier {
    /// Fits on a frame view; all stochastic choices flow through `rng`.
    fn fit(&mut self, data: &FrameView<'_>, rng: &mut dyn RngCore);
    /// Display name.
    fn name(&self) -> &'static str;
}

/// A `Model` impl only has to add a display name and adapt the fit
/// signature — stochastic trainers thread the harness RNG through,
/// deterministic ones (`seedless`) ignore it. Prediction is inherited
/// from each model's `Classifier` impl.
macro_rules! impl_model {
    ($ty:ty, $name:literal, seeded) => {
        impl Model for $ty {
            fn fit(&mut self, data: &FrameView<'_>, mut rng: &mut dyn RngCore) {
                <$ty>::fit(self, data, &mut rng)
            }
            fn name(&self) -> &'static str {
                $name
            }
        }
    };
    ($ty:ty, $name:literal, seedless) => {
        impl Model for $ty {
            fn fit(&mut self, data: &FrameView<'_>, _rng: &mut dyn RngCore) {
                <$ty>::fit(self, data)
            }
            fn name(&self) -> &'static str {
                $name
            }
        }
    };
}

impl_model!(DecisionTree, "DT", seeded);
impl_model!(RandomForest, "RF", seeded);
impl_model!(SvmClassifier, "SVM", seeded);
impl_model!(NeuralNet, "DNN", seeded);
impl_model!(KnnClassifier, "kNN", seedless);
impl_model!(GbdtClassifier, "GBDT", seedless);

/// The four model families of §6.2, with the hyper-parameters that gave
/// the paper its "best combination of parameters".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Decision tree (Gini, depth-limited).
    DecisionTree,
    /// Random forest.
    RandomForest,
    /// SVM (RBF kernel).
    Svm,
    /// Dense neural network with dropout.
    NeuralNet,
    /// k-nearest neighbours (extension baseline).
    Knn,
    /// Gradient-boosted trees (extension baseline).
    Gbdt,
}

impl ModelKind {
    /// The paper's four models, in the order it reports them.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::DecisionTree,
        ModelKind::RandomForest,
        ModelKind::Svm,
        ModelKind::NeuralNet,
    ];

    /// The extended set: the paper's four plus the extension baselines.
    pub const EXTENDED: [ModelKind; 6] = [
        ModelKind::DecisionTree,
        ModelKind::RandomForest,
        ModelKind::Svm,
        ModelKind::NeuralNet,
        ModelKind::Knn,
        ModelKind::Gbdt,
    ];

    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::DecisionTree => "DT",
            ModelKind::RandomForest => "RF",
            ModelKind::Svm => "SVM",
            ModelKind::NeuralNet => "DNN",
            ModelKind::Knn => "kNN",
            ModelKind::Gbdt => "GBDT",
        }
    }

    /// Builds a fresh unfitted model with reference hyper-parameters.
    pub fn build(self) -> Box<dyn Model> {
        match self {
            ModelKind::DecisionTree => Box::new(DecisionTree::new(TreeConfig::default())),
            ModelKind::RandomForest => Box::new(RandomForest::new(ForestConfig::default())),
            ModelKind::Svm => Box::new(SvmClassifier::new(SvmConfig::default())),
            ModelKind::NeuralNet => Box::new(NeuralNet::new(NnConfig {
                epochs: 60,
                ..Default::default()
            })),
            ModelKind::Knn => Box::new(KnnClassifier::new(KnnConfig::default())),
            ModelKind::Gbdt => Box::new(GbdtClassifier::new(GbdtConfig::default())),
        }
    }
}

/// Outcome of a cross-validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvResult {
    /// Mean accuracy over folds × repeats.
    pub accuracy: f64,
    /// Mean weighted F1 over folds × repeats.
    pub weighted_f1: f64,
    /// Per-fold accuracies (flattened across repeats).
    pub fold_accuracies: Vec<f64>,
}

/// Repeated stratified k-fold cross validation.
///
/// Every `(repeat, fold)` cell is an independent unit of work: the fold
/// assignment of a repeat comes from a `"folds"`-labelled stream of that
/// repeat's derived seed, and each cell fits its model from its own
/// `"fit"`-labelled stream. Cells therefore evaluate in parallel, and the
/// result — including the order of `fold_accuracies` (repeat-major,
/// fold-minor) — is identical at any thread count.
pub fn cross_validate(
    kind: ModelKind,
    data: &Dataset,
    k: usize,
    repeats: usize,
    seed: u64,
) -> CvResult {
    assert!(repeats >= 1);
    let fold_sets: Vec<Vec<Vec<usize>>> = (0..repeats)
        .map(|r| {
            let rep_seed = derive_seed_index(seed, r as u64);
            let mut rng = rng_from_seed(derive_seed(rep_seed, "folds"));
            data.stratified_folds(k, &mut rng)
        })
        .collect();
    let cells: Vec<(usize, usize)> = (0..repeats)
        .flat_map(|r| (0..k).map(move |h| (r, h)))
        .collect();
    let scores: Vec<(f64, f64)> = par_map(&cells, |_, &(r, held_out)| {
        let folds = &fold_sets[r];
        let test_idx = &folds[held_out];
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != held_out)
            .flat_map(|(_, f)| f.iter().copied())
            .collect();
        let train = data.select(&train_idx);
        let test = data.select(test_idx);
        let rep_seed = derive_seed_index(seed, r as u64);
        let mut rng = rng_from_seed(derive_seed_index(
            derive_seed(rep_seed, "fit"),
            held_out as u64,
        ));
        let mut model = kind.build();
        model.fit(&train, &mut rng);
        let pred = model.predict_view(&test);
        let truth = test.labels_vec();
        (
            accuracy(&truth, &pred),
            weighted_f1(&truth, &pred, data.n_classes),
        )
    });
    let accs: Vec<f64> = scores.iter().map(|s| s.0).collect();
    let f1s: Vec<f64> = scores.iter().map(|s| s.1).collect();
    CvResult {
        accuracy: mean(&accs),
        weighted_f1: mean(&f1s),
        fold_accuracies: accs,
    }
}

/// Train on one dataset, evaluate on another (the cross-building study of
/// §6.2). Returns `(accuracy, weighted F1)`.
pub fn train_test_eval(kind: ModelKind, train: &Dataset, test: &Dataset, seed: u64) -> (f64, f64) {
    let mut rng = rng_from_seed(seed);
    let mut model = kind.build();
    model.fit(&train.view(), &mut rng);
    let pred = model.predict_view(&test.view());
    (
        accuracy(&test.labels, &pred),
        weighted_f1(&test.labels, &pred, train.n_classes),
    )
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let off = if c == 0 { -2.0 } else { 2.0 };
            features.push(vec![
                off + libra_util::rng::standard_normal(&mut rng) * 0.7,
                libra_util::rng::standard_normal(&mut rng),
            ]);
            labels.push(c);
        }
        Dataset::new(features, labels, 2, vec!["x".into(), "y".into()])
    }

    #[test]
    fn cv_reports_high_accuracy_on_easy_data() {
        let data = blobs(200, 1);
        for kind in [ModelKind::DecisionTree, ModelKind::RandomForest] {
            let res = cross_validate(kind, &data, 5, 1, 7);
            assert!(res.accuracy > 0.9, "{} acc {}", kind.name(), res.accuracy);
            assert!(res.weighted_f1 > 0.9);
            assert_eq!(res.fold_accuracies.len(), 5);
        }
    }

    #[test]
    fn cv_repeats_multiply_folds() {
        let data = blobs(100, 2);
        let res = cross_validate(ModelKind::DecisionTree, &data, 4, 3, 1);
        assert_eq!(res.fold_accuracies.len(), 12);
    }

    #[test]
    fn cv_is_deterministic() {
        let data = blobs(100, 3);
        let a = cross_validate(ModelKind::RandomForest, &data, 5, 1, 99);
        let b = cross_validate(ModelKind::RandomForest, &data, 5, 1, 99);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn train_test_eval_generalizes() {
        let train = blobs(200, 4);
        let test = blobs(100, 5);
        let (acc, f1) = train_test_eval(ModelKind::RandomForest, &train, &test, 6);
        assert!(acc > 0.9, "acc {acc}");
        assert!(f1 > 0.9);
    }

    #[test]
    fn all_model_kinds_build_and_fit() {
        let data = blobs(80, 7);
        for kind in ModelKind::ALL {
            let mut rng = rng_from_seed(8);
            let mut model = kind.build();
            model.fit(&data.view(), &mut rng);
            let pred = model.predict_view(&data.view());
            assert_eq!(pred.len(), data.len());
            let acc = accuracy(&data.labels, &pred);
            assert!(acc > 0.8, "{} training accuracy {}", kind.name(), acc);
        }
    }
}
