//! Random forests: bagged CART trees with per-split feature subsampling,
//! soft-vote prediction, and averaged Gini importances.
//!
//! The paper's headline model: "simple models based on random forests can
//! predict the right action with 98 % accuracy" (§1), and the Gini
//! importances of Table 3 come from this model.

use crate::data::FrameView;
use crate::tree::{DecisionTree, Impurity, TreeConfig};
use libra_obs as obs;
use libra_util::par::par_map_index;
use libra_util::rng::derive_seed_index;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Impurity criterion for all member trees.
    pub impurity: Impurity,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum rows to split a node.
    pub min_samples_split: usize,
    /// Features per split; `None` = `ceil(sqrt(n_features))`.
    pub max_features: Option<usize>,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 60,
            impurity: Impurity::Gini,
            max_depth: 10,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

/// A fitted random forest classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    config: ForestConfig,
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(config: ForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            n_classes: 0,
            n_features: 0,
        }
    }

    /// Fits the forest on a frame or view: each tree sees a bootstrap
    /// resample of the data and considers a random feature subset at
    /// each split.
    ///
    /// Trees train in parallel: each derives an independent RNG from the
    /// single `base_seed` draw, and the member list is collected in tree
    /// order — the fitted forest is identical at any thread count (and to
    /// the historical sequential implementation). Bootstrap samples are
    /// index lists resolved against the backing frame — no row clones.
    pub fn fit<'a>(&mut self, data: impl Into<FrameView<'a>>, rng: &mut impl Rng) {
        let _span = obs::span("ml.forest.fit");
        let data = data.into();
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        self.n_classes = data.n_classes();
        self.n_features = data.n_features();
        let config = self.config;
        let mtry = config
            .max_features
            .unwrap_or_else(|| (data.n_features() as f64).sqrt().ceil() as usize)
            .clamp(1, data.n_features());
        let base_seed: u64 = rng.gen();
        self.trees = par_map_index(config.n_trees, |t| {
            let mut tree_rng =
                libra_util::rng::rng_from_seed(derive_seed_index(base_seed, t as u64));
            // Bootstrap resample: local draws mapped to backing-frame rows.
            let idx: Vec<usize> = (0..data.len())
                .map(|_| tree_rng.gen_range(0..data.len()))
                .collect();
            let global = data.resolve(&idx);
            let sample = data.frame().select(&global);
            let mut tree = DecisionTree::new(TreeConfig {
                impurity: config.impurity,
                max_depth: config.max_depth,
                min_samples_split: config.min_samples_split,
                max_features: Some(mtry),
            });
            tree.fit(&sample, &mut tree_rng);
            tree
        });
    }

    /// Mean class-probability vote over all trees.
    pub fn predict_proba_one(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.trees.is_empty(), "forest not fitted");
        let mut probs = vec![0.0; self.n_classes];
        for tree in &self.trees {
            for (p, q) in probs.iter_mut().zip(tree.predict_proba_one(row)) {
                *p += q;
            }
        }
        let n = self.trees.len() as f64;
        for p in &mut probs {
            *p /= n;
        }
        probs
    }

    /// Predicted class for one row (soft vote). Batch prediction lives
    /// on the [`crate::Classifier`] trait — the single serving surface.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        let probs = self.predict_proba_one(row);
        probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    /// Gini importances averaged over member trees (Table 3).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (a, b) in imp.iter_mut().zip(tree.feature_importances()) {
                *a += b;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of member trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted member trees, in vote order (engine compilation,
    /// inspection).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of classes the forest was fitted on.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of features the forest was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use crate::data::Dataset;
    use crate::metrics::accuracy;
    use libra_util::rng::rng_from_seed;
    use rand::Rng as _;

    /// Two noisy interleaved half-moons — needs a non-linear model.
    fn moons(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let t = std::f64::consts::PI * (i as f64 / n as f64);
            let c = i % 2;
            let (mut x, mut y) = if c == 0 {
                (t.cos(), t.sin())
            } else {
                (1.0 - t.cos(), 0.5 - t.sin())
            };
            x += 0.15 * (rng.gen::<f64>() - 0.5);
            y += 0.15 * (rng.gen::<f64>() - 0.5);
            features.push(vec![x, y]);
            labels.push(c);
        }
        Dataset::new(features, labels, 2, vec!["x".into(), "y".into()])
    }

    #[test]
    fn forest_fits_moons_well() {
        let train = moons(300, 1);
        let test = moons(120, 2);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 40,
            ..Default::default()
        });
        let mut rng = rng_from_seed(3);
        rf.fit(&train, &mut rng);
        let acc = accuracy(&test.labels, &rf.predict_view(&test.view()));
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn forest_beats_single_shallow_tree_on_noisy_data() {
        let train = moons(300, 4);
        let test = moons(150, 5);
        let mut rng = rng_from_seed(6);
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 3,
            ..Default::default()
        });
        tree.fit(&train, &mut rng);
        let tree_acc = accuracy(&test.labels, &tree.predict_view(&test.view()));
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 60,
            max_depth: 10,
            ..Default::default()
        });
        rf.fit(&train, &mut rng);
        let rf_acc = accuracy(&test.labels, &rf.predict_view(&test.view()));
        assert!(rf_acc >= tree_acc, "rf {rf_acc} < tree {tree_acc}");
    }

    #[test]
    fn probabilities_normalized() {
        let data = moons(100, 7);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 10,
            ..Default::default()
        });
        let mut rng = rng_from_seed(8);
        rf.fit(&data, &mut rng);
        let p = rf.predict_proba_one(data.row(0));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn importances_normalized() {
        let data = moons(100, 9);
        let mut rf = RandomForest::new(ForestConfig::default());
        let mut rng = rng_from_seed(10);
        rf.fit(&data, &mut rng);
        let imp = rf.feature_importances();
        assert_eq!(imp.len(), 2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identical_forest_at_any_thread_count() {
        // The parallel-training determinism contract: same seed, same
        // forest, whether trees were fitted on 1 or 4 workers.
        let data = moons(120, 21);
        let fit_at = |threads: usize| {
            libra_util::par::set_threads(threads);
            let mut rf = RandomForest::new(ForestConfig {
                n_trees: 12,
                ..Default::default()
            });
            let mut rng = rng_from_seed(5);
            rf.fit(&data, &mut rng);
            libra_util::par::set_threads(0);
            (rf.predict_view(&data.view()), rf.feature_importances())
        };
        assert_eq!(fit_at(1), fit_at(4));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = moons(80, 11);
        let fit = |seed| {
            let mut rf = RandomForest::new(ForestConfig {
                n_trees: 5,
                ..Default::default()
            });
            let mut rng = rng_from_seed(seed);
            rf.fit(&data, &mut rng);
            rf.predict_view(&data.view())
        };
        assert_eq!(fit(42), fit(42));
    }
}
