//! Support vector machines trained with simplified SMO.
//!
//! The paper evaluates SVMs "with both linear and non-linear
//! classification metrics and different regularization parameters"
//! (§6.2). This implementation offers linear and RBF kernels, trains
//! binary machines with the simplified sequential-minimal-optimization
//! algorithm, composes multi-class problems one-vs-rest, and
//! standardizes inputs internally (SVMs are scale-sensitive; trees are
//! not, so standardization lives here rather than in the dataset).

use crate::data::{FeatureFrame, FrameView, Standardizer};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Kernel function choice.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Dot-product kernel (linear decision boundary).
    Linear,
    /// Gaussian radial basis function `exp(−γ‖x−y‖²)`.
    Rbf {
        /// Kernel width parameter γ.
        gamma: f64,
    },
}

impl Kernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// SVM hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Kernel.
    pub kernel: Kernel,
    /// Soft-margin regularization parameter C.
    pub c: f64,
    /// KKT violation tolerance.
    pub tol: f64,
    /// SMO terminates after this many passes without a change.
    pub max_passes: usize,
    /// Hard cap on optimization sweeps.
    pub max_iter: usize,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self {
            kernel: Kernel::Rbf { gamma: 0.5 },
            c: 1.0,
            tol: 1e-3,
            max_passes: 5,
            max_iter: 200,
        }
    }
}

/// One binary machine: support vectors with their coefficients.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BinarySvm {
    support_x: Vec<Vec<f64>>,
    /// `αᵢ·yᵢ` per support vector.
    coef: Vec<f64>,
    bias: f64,
    kernel: Kernel,
}

impl BinarySvm {
    /// Trains on frame rows with labels in {−1, +1} via simplified SMO.
    fn train(x: &FeatureFrame, y: &[f64], cfg: &SvmConfig, rng: &mut impl Rng) -> Self {
        let n = x.len();
        assert!(n >= 2, "need at least 2 rows");
        // Precompute the kernel matrix (datasets here are ≤ ~1000 rows).
        let mut k = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = cfg.kernel.eval(x.row(i), x.row(j));
                k[i][j] = v;
                k[j][i] = v;
            }
        }

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        let f = |alpha: &[f64], b: f64, k: &Vec<Vec<f64>>, idx: usize| -> f64 {
            alpha
                .iter()
                .zip(y)
                .enumerate()
                .map(|(j, (&a, &yj))| a * yj * k[j][idx])
                .sum::<f64>()
                + b
        };

        let mut passes = 0usize;
        let mut iter = 0usize;
        while passes < cfg.max_passes && iter < cfg.max_iter {
            iter += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&alpha, b, &k, i) - y[i];
                if (y[i] * ei < -cfg.tol && alpha[i] < cfg.c)
                    || (y[i] * ei > cfg.tol && alpha[i] > 0.0)
                {
                    // Pick a random j ≠ i.
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    let ej = f(&alpha, b, &k, j) - y[j];
                    let (ai_old, aj_old) = (alpha[i], alpha[j]);
                    let (lo, hi) = if (y[i] - y[j]).abs() > 1e-12 {
                        (
                            (aj_old - ai_old).max(0.0),
                            (cfg.c + aj_old - ai_old).min(cfg.c),
                        )
                    } else {
                        (
                            (ai_old + aj_old - cfg.c).max(0.0),
                            (ai_old + aj_old).min(cfg.c),
                        )
                    };
                    if (hi - lo).abs() < 1e-12 {
                        continue;
                    }
                    let eta = 2.0 * k[i][j] - k[i][i] - k[j][j];
                    if eta >= 0.0 {
                        continue;
                    }
                    let mut aj = aj_old - y[j] * (ei - ej) / eta;
                    aj = aj.clamp(lo, hi);
                    if (aj - aj_old).abs() < 1e-5 {
                        continue;
                    }
                    let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                    alpha[i] = ai;
                    alpha[j] = aj;
                    let b1 =
                        b - ei - y[i] * (ai - ai_old) * k[i][i] - y[j] * (aj - aj_old) * k[i][j];
                    let b2 =
                        b - ej - y[i] * (ai - ai_old) * k[i][j] - y[j] * (aj - aj_old) * k[j][j];
                    b = if alpha[i] > 0.0 && alpha[i] < cfg.c {
                        b1
                    } else if alpha[j] > 0.0 && alpha[j] < cfg.c {
                        b2
                    } else {
                        (b1 + b2) / 2.0
                    };
                    changed += 1;
                }
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Keep only support vectors.
        let mut support_x = Vec::new();
        let mut coef = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                support_x.push(x.row(i).to_vec());
                coef.push(alpha[i] * y[i]);
            }
        }
        Self {
            support_x,
            coef,
            bias: b,
            kernel: cfg.kernel,
        }
    }

    /// Signed decision value.
    fn decision(&self, row: &[f64]) -> f64 {
        self.support_x
            .iter()
            .zip(&self.coef)
            .map(|(sv, &c)| c * self.kernel.eval(sv, row))
            .sum::<f64>()
            + self.bias
    }
}

/// Multi-class SVM classifier (one-vs-rest) with internal
/// standardization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SvmClassifier {
    config: SvmConfig,
    machines: Vec<BinarySvm>,
    standardizer: Option<Standardizer>,
    n_classes: usize,
}

impl SvmClassifier {
    /// Creates an unfitted classifier.
    pub fn new(config: SvmConfig) -> Self {
        Self {
            config,
            machines: Vec::new(),
            standardizer: None,
            n_classes: 0,
        }
    }

    /// Fits one one-vs-rest machine per class (a single machine for
    /// binary problems) from a frame or any view of one.
    pub fn fit<'a>(&mut self, data: impl Into<FrameView<'a>>, rng: &mut impl Rng) {
        let data = data.into();
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        let std = Standardizer::fit(&data);
        let scaled = std.transform(&data);
        self.standardizer = Some(std);
        self.n_classes = data.n_classes();
        let n_machines = if data.n_classes() == 2 {
            1
        } else {
            data.n_classes()
        };
        self.machines = (0..n_machines)
            .map(|c| {
                let y: Vec<f64> = scaled
                    .labels
                    .iter()
                    .map(|&l| if l == c { 1.0 } else { -1.0 })
                    .collect();
                BinarySvm::train(&scaled, &y, &self.config, rng)
            })
            .collect();
    }

    /// Predicted class for one row.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        let std = self.standardizer.as_ref().expect("SVM not fitted");
        let row = std.transform_row(row);
        if self.n_classes == 2 {
            if self.machines[0].decision(&row) >= 0.0 {
                0
            } else {
                1
            }
        } else {
            self.machines
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.decision(&row)
                        .partial_cmp(&b.1.decision(&row))
                        .expect("finite")
                })
                .map(|(i, _)| i)
                .expect("non-empty")
        }
    }

    /// Total number of support vectors over all machines.
    pub fn n_support_vectors(&self) -> usize {
        self.machines.iter().map(|m| m.support_x.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use crate::data::Dataset;
    use crate::metrics::accuracy;
    use libra_util::rng::rng_from_seed;

    fn linear_separable(n: usize) -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 2;
            let off = if c == 0 { -2.0 } else { 2.0 };
            let x = off + ((i * 13) % 7) as f64 * 0.1;
            let y = ((i * 29) % 11) as f64 * 0.2 - 1.0;
            features.push(vec![x, y]);
            labels.push(c);
        }
        Dataset::new(features, labels, 2, vec!["x".into(), "y".into()])
    }

    fn circles(n: usize) -> Dataset {
        // Class 0 inside a circle, class 1 outside — RBF-separable only.
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let theta = i as f64 * 0.7;
            let r = if i % 2 == 0 { 0.5 } else { 2.0 };
            features.push(vec![r * theta.cos(), r * theta.sin()]);
            labels.push(i % 2);
        }
        Dataset::new(features, labels, 2, vec!["x".into(), "y".into()])
    }

    #[test]
    fn linear_svm_separates_linear_data() {
        let data = linear_separable(80);
        let mut svm = SvmClassifier::new(SvmConfig {
            kernel: Kernel::Linear,
            ..Default::default()
        });
        let mut rng = rng_from_seed(1);
        svm.fit(&data, &mut rng);
        let acc = accuracy(&data.labels, &svm.predict_view(&data.view()));
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn rbf_svm_separates_circles() {
        let data = circles(120);
        let mut svm = SvmClassifier::new(SvmConfig::default());
        let mut rng = rng_from_seed(2);
        svm.fit(&data, &mut rng);
        let acc = accuracy(&data.labels, &svm.predict_view(&data.view()));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn linear_svm_fails_on_circles() {
        // Sanity check that the kernels genuinely differ.
        let data = circles(120);
        let mut svm = SvmClassifier::new(SvmConfig {
            kernel: Kernel::Linear,
            ..Default::default()
        });
        let mut rng = rng_from_seed(3);
        svm.fit(&data, &mut rng);
        let acc = accuracy(&data.labels, &svm.predict_view(&data.view()));
        assert!(acc < 0.8, "linear should not separate circles: {acc}");
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..90 {
            let c = i % 3;
            let center = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)][c];
            features.push(vec![
                center.0 + ((i * 7) % 5) as f64 * 0.1,
                center.1 + ((i * 11) % 5) as f64 * 0.1,
            ]);
            labels.push(c);
        }
        let data = Dataset::new(features, labels, 3, vec!["x".into(), "y".into()]);
        let mut svm = SvmClassifier::new(SvmConfig::default());
        let mut rng = rng_from_seed(4);
        svm.fit(&data, &mut rng);
        assert_eq!(svm.machines.len(), 3);
        let acc = accuracy(&data.labels, &svm.predict_view(&data.view()));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn keeps_only_support_vectors() {
        let data = linear_separable(100);
        let mut svm = SvmClassifier::new(SvmConfig {
            kernel: Kernel::Linear,
            ..Default::default()
        });
        let mut rng = rng_from_seed(5);
        svm.fit(&data, &mut rng);
        assert!(
            svm.n_support_vectors() < 100,
            "sv {}",
            svm.n_support_vectors()
        );
        assert!(svm.n_support_vectors() >= 2);
    }

    #[test]
    fn kernel_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let r = Kernel::Rbf { gamma: 1.0 }.eval(&[0.0], &[1.0]);
        assert!((r - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(Kernel::Rbf { gamma: 1.0 }.eval(&[2.0], &[2.0]), 1.0);
    }
}
