//! A small dense neural network with dropout, trained with Adam.
//!
//! The paper's DNN is "a fully connected dense network with 4 dense
//! layers. Rectified linear (relu) activation was used in the first 3
//! layers and sigmoid activation was used in the last layer. ...
//! inclusion of Dropout after each layer gave the best results" (§6.2).
//! We mirror that: three ReLU hidden layers with dropout, and a softmax
//! output (the multi-class generalization of the paper's sigmoid head —
//! identical for 2 classes up to parameterization). Inputs are
//! standardized internally.

use crate::data::{Dataset, FrameView, Standardizer};
use libra_util::rng::standard_normal;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Network and training hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnConfig {
    /// Hidden layer widths (the paper's 4-dense-layer network = 3 hidden
    /// + 1 output).
    pub hidden: Vec<usize>,
    /// Dropout probability applied after each hidden layer.
    pub dropout: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
}

impl Default for NnConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 32, 16],
            dropout: 0.2,
            epochs: 120,
            batch_size: 32,
            learning_rate: 1e-3,
        }
    }
}

/// One dense layer with its Adam state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    inputs: usize,
    outputs: usize,
    /// Row-major `outputs × inputs` weights.
    w: Vec<f64>,
    b: Vec<f64>,
    // Adam moments.
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, rng: &mut impl Rng) -> Self {
        // He initialization for ReLU layers.
        let scale = (2.0 / inputs as f64).sqrt();
        let w = (0..inputs * outputs)
            .map(|_| scale * standard_normal(rng))
            .collect();
        Self {
            inputs,
            outputs,
            w,
            b: vec![0.0; outputs],
            mw: vec![0.0; inputs * outputs],
            vw: vec![0.0; inputs * outputs],
            mb: vec![0.0; outputs],
            vb: vec![0.0; outputs],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        (0..self.outputs)
            .map(|o| {
                let row = &self.w[o * self.inputs..(o + 1) * self.inputs];
                row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.b[o]
            })
            .collect()
    }
}

/// A fitted dense neural-network classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeuralNet {
    config: NnConfig,
    layers: Vec<Layer>,
    standardizer: Option<Standardizer>,
    n_classes: usize,
    adam_t: u64,
}

impl NeuralNet {
    /// Creates an unfitted network.
    pub fn new(config: NnConfig) -> Self {
        Self {
            config,
            layers: Vec::new(),
            standardizer: None,
            n_classes: 0,
            adam_t: 0,
        }
    }

    /// Trains with mini-batch Adam on softmax cross-entropy from a frame
    /// or any view of one.
    pub fn fit<'a>(&mut self, data: impl Into<FrameView<'a>>, rng: &mut impl Rng) {
        let data = data.into();
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        let std = Standardizer::fit(&data);
        let scaled = std.transform(&data);
        self.standardizer = Some(std);
        self.n_classes = data.n_classes();
        self.adam_t = 0;

        // Build layers: input → hidden... → n_classes.
        let mut sizes = vec![data.n_features()];
        sizes.extend_from_slice(&self.config.hidden);
        sizes.push(data.n_classes());
        self.layers = sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], rng))
            .collect();

        let n = scaled.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(rng);
            for batch in order.chunks(self.config.batch_size) {
                self.train_batch(&scaled, batch, rng);
            }
        }
    }

    fn train_batch(&mut self, data: &Dataset, batch: &[usize], rng: &mut impl Rng) {
        let n_layers = self.layers.len();
        // Gradient accumulators.
        let mut gw: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.w.len()]).collect();
        let mut gb: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();

        for &i in batch {
            // Forward with dropout.
            let mut acts: Vec<Vec<f64>> = vec![data.row(i).to_vec()];
            let mut masks: Vec<Vec<f64>> = Vec::new();
            for (li, layer) in self.layers.iter().enumerate() {
                let mut z = layer.forward(acts.last().expect("input"));
                if li < n_layers - 1 {
                    // ReLU + inverted dropout.
                    let keep = 1.0 - self.config.dropout;
                    let mask: Vec<f64> = z
                        .iter()
                        .map(|_| {
                            if rng.gen::<f64>() < keep {
                                1.0 / keep
                            } else {
                                0.0
                            }
                        })
                        .collect();
                    for (v, m) in z.iter_mut().zip(&mask) {
                        *v = v.max(0.0) * m;
                    }
                    masks.push(mask);
                }
                acts.push(z);
            }
            let probs = softmax(acts.last().expect("output"));

            // Backward: delta at output = p − onehot.
            let mut delta: Vec<f64> = probs.clone();
            delta[data.labels[i]] -= 1.0;
            for li in (0..n_layers).rev() {
                let input = &acts[li];
                let layer = &self.layers[li];
                for o in 0..layer.outputs {
                    gb[li][o] += delta[o];
                    let row = &mut gw[li][o * layer.inputs..(o + 1) * layer.inputs];
                    for (g, &x) in row.iter_mut().zip(input) {
                        *g += delta[o] * x;
                    }
                }
                if li > 0 {
                    // Propagate through weights, then through dropout+ReLU
                    // of the previous layer.
                    let mut new_delta = vec![0.0; layer.inputs];
                    for o in 0..layer.outputs {
                        let row = &layer.w[o * layer.inputs..(o + 1) * layer.inputs];
                        for (nd, &w) in new_delta.iter_mut().zip(row) {
                            *nd += delta[o] * w;
                        }
                    }
                    let mask = &masks[li - 1];
                    let a_prev = &acts[li]; // post-activation of layer li-1
                    for ((nd, &m), &a) in new_delta.iter_mut().zip(mask).zip(a_prev) {
                        // ReLU derivative: active iff post-activation > 0
                        // (mask already folds dropout scaling in).
                        *nd *= if a > 0.0 { m } else { 0.0 };
                    }
                    delta = new_delta;
                }
            }
        }

        // Adam step.
        self.adam_t += 1;
        let t = self.adam_t as f64;
        let (b1, b2, eps) = (0.9, 0.999, 1e-8);
        let lr = self.config.learning_rate;
        let scale = 1.0 / batch.len() as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for (idx, g) in gw[li].iter().enumerate() {
                let g = g * scale;
                layer.mw[idx] = b1 * layer.mw[idx] + (1.0 - b1) * g;
                layer.vw[idx] = b2 * layer.vw[idx] + (1.0 - b2) * g * g;
                let mhat = layer.mw[idx] / (1.0 - b1.powf(t));
                let vhat = layer.vw[idx] / (1.0 - b2.powf(t));
                layer.w[idx] -= lr * mhat / (vhat.sqrt() + eps);
            }
            for (idx, g) in gb[li].iter().enumerate() {
                let g = g * scale;
                layer.mb[idx] = b1 * layer.mb[idx] + (1.0 - b1) * g;
                layer.vb[idx] = b2 * layer.vb[idx] + (1.0 - b2) * g * g;
                let mhat = layer.mb[idx] / (1.0 - b1.powf(t));
                let vhat = layer.vb[idx] / (1.0 - b2.powf(t));
                layer.b[idx] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    /// Class probabilities for one (raw, unstandardized) row.
    pub fn predict_proba_one(&self, row: &[f64]) -> Vec<f64> {
        let std = self.standardizer.as_ref().expect("network not fitted");
        let mut a = std.transform_row(row);
        let n_layers = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            a = layer.forward(&a);
            if li < n_layers - 1 {
                for v in &mut a {
                    *v = v.max(0.0);
                }
            }
        }
        softmax(&a)
    }

    /// Predicted class for one row.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        let p = self.predict_proba_one(row);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

fn softmax(z: &[f64]) -> Vec<f64> {
    let max = z.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = z.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use crate::metrics::accuracy;
    use libra_util::rng::rng_from_seed;

    fn xor_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a = if rng.gen::<bool>() { 1.0 } else { 0.0 };
            let b = if rng.gen::<bool>() { 1.0 } else { 0.0 };
            let jx: f64 = rng.gen::<f64>() * 0.1;
            let jy: f64 = rng.gen::<f64>() * 0.1;
            features.push(vec![a + jx, b + jy]);
            labels.push(((a as usize) ^ (b as usize)) as usize);
        }
        Dataset::new(features, labels, 2, vec!["a".into(), "b".into()])
    }

    #[test]
    fn softmax_normalizes() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[1001.0, 1002.0]);
        assert!((a[0] - b[0]).abs() < 1e-12);
    }

    #[test]
    fn learns_xor() {
        let train = xor_dataset(240, 1);
        let test = xor_dataset(80, 2);
        let mut nn = NeuralNet::new(NnConfig {
            hidden: vec![16, 8],
            dropout: 0.1,
            epochs: 150,
            ..Default::default()
        });
        let mut rng = rng_from_seed(3);
        nn.fit(&train, &mut rng);
        let acc = accuracy(&test.labels, &nn.predict_view(&test.view()));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn three_class_blobs() {
        let mut rng = rng_from_seed(4);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..240 {
            let c = i % 3;
            let center = [(0.0, 0.0), (5.0, 0.0), (0.0, 5.0)][c];
            features.push(vec![
                center.0 + standard_normal(&mut rng) * 0.5,
                center.1 + standard_normal(&mut rng) * 0.5,
            ]);
            labels.push(c);
        }
        let data = Dataset::new(features, labels, 3, vec!["x".into(), "y".into()]);
        let mut nn = NeuralNet::new(NnConfig {
            epochs: 60,
            ..Default::default()
        });
        nn.fit(&data, &mut rng);
        let acc = accuracy(&data.labels, &nn.predict_view(&data.view()));
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn probabilities_valid() {
        let data = xor_dataset(100, 5);
        let mut nn = NeuralNet::new(NnConfig {
            epochs: 10,
            ..Default::default()
        });
        let mut rng = rng_from_seed(6);
        nn.fit(&data, &mut rng);
        let p = nn.predict_proba_one(data.row(0));
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = xor_dataset(60, 7);
        let run = || {
            let mut nn = NeuralNet::new(NnConfig {
                epochs: 5,
                ..Default::default()
            });
            let mut rng = rng_from_seed(8);
            nn.fit(&data, &mut rng);
            nn.predict_view(&data.view())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dropout_zero_trains_fine() {
        let data = xor_dataset(160, 9);
        let mut nn = NeuralNet::new(NnConfig {
            dropout: 0.0,
            epochs: 120,
            hidden: vec![16, 8],
            ..Default::default()
        });
        let mut rng = rng_from_seed(10);
        nn.fit(&data, &mut rng);
        let acc = accuracy(&data.labels, &nn.predict_view(&data.view()));
        assert!(acc > 0.95, "accuracy {acc}");
    }
}
