//! # libra-ml
//!
//! From-scratch machine learning for the LiBRA reproduction — the models
//! the paper evaluates in §6.2, with no external ML dependency:
//!
//! * [`tree`] — CART decision trees (Gini / entropy impurity, depth
//!   limits, Gini importances).
//! * [`forest`] — random forests (bagging + per-split feature
//!   subsampling, soft voting) — the paper's headline 98 %-accuracy
//!   model and the source of Table 3's importances.
//! * [`svm`] — SVMs trained with simplified SMO (linear and RBF
//!   kernels, one-vs-rest multi-class).
//! * [`nn`] — a dense neural network matching the paper's 4-layer
//!   ReLU+dropout architecture, trained with Adam.
//! * [`knn`] / [`gbdt`] — extension baselines beyond the paper's set:
//!   k-nearest-neighbours and second-order gradient-boosted trees.
//! * [`data`] — the columnar [`FeatureFrame`] dataset (one flat
//!   allocation, zero-copy [`FrameView`] borrows), stratified k-fold
//!   splits, standardization.
//! * [`metrics`] — accuracy, weighted F1, confusion matrices.
//! * [`cv`] — the evaluation protocols: repeated stratified k-fold CV
//!   and cross-dataset train/test.
//! * [`classify`] — the shared prediction-only [`Classifier`] trait
//!   implemented by every fitted model (and by the compiled engines of
//!   `libra_infer`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod cv;
pub mod data;
pub mod forest;
pub mod gbdt;
pub mod knn;
pub mod metrics;
pub mod nn;
pub mod svm;
pub mod tree;

pub use classify::Classifier;
pub use cv::{cross_validate, train_test_eval, CvResult, Model, ModelKind};
pub use data::{Dataset, FeatureFrame, FrameView, Standardizer};
pub use forest::{ForestConfig, RandomForest};
pub use gbdt::{DumpRegNode, GbdtClassifier, GbdtConfig};
pub use knn::{KnnClassifier, KnnConfig};
pub use metrics::{accuracy, confusion_matrix, weighted_f1};
pub use nn::{NeuralNet, NnConfig};
pub use svm::{Kernel, SvmClassifier, SvmConfig};
pub use tree::{DecisionTree, DumpNode, Impurity, TreeConfig};
