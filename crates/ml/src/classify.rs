//! The shared prediction-only interface.
//!
//! Training and serving have different shapes: fitting wants hyper-
//! parameters, an RNG, and a mutable model, while serving only ever asks
//! "which class is this row?". [`Classifier`] captures the serving half,
//! so simulators, compiled inference engines (`libra_infer`), and the
//! fitted models of this crate are interchangeable behind one trait.
//!
//! Since the API consolidation, `Classifier` is the *only* public
//! prediction surface: the fitted models no longer carry inherent
//! `predict`/`predict_view` duplicates, and batch serving flows through
//! [`Classifier::predict_batch_into`] so engines with allocation-free
//! batch paths (the flat ensembles of `libra_infer`) can override it.

use crate::data::FrameView;

/// A fitted classifier: maps feature rows to class indices.
///
/// Implementors must be deterministic — the same row always yields the
/// same class — and every batch method must agree element-wise with
/// repeated `predict_one` calls (the default implementations guarantee
/// this; overrides such as the flat engines preserve it bitwise).
pub trait Classifier {
    /// Predicted class index for one feature row.
    fn predict_one(&self, row: &[f64]) -> usize;

    /// Predicted class indices for every row of a columnar frame view.
    fn predict_view(&self, data: &FrameView<'_>) -> Vec<usize> {
        let mut out = Vec::new();
        self.predict_batch_into(data, &mut out);
        out
    }

    /// Predicts every row of a frame view into `out`, reusing its
    /// capacity. Engines with allocation-free batch kernels override
    /// this; the default walks `predict_one` row by row.
    fn predict_batch_into(&self, data: &FrameView<'_>, out: &mut Vec<usize>) {
        out.clear();
        out.reserve(data.len());
        out.extend(data.rows().map(|r| self.predict_one(r)));
    }
}

/// Forwards the trait to the inherent `predict_one` every fitted model
/// in this crate provides; batch prediction comes from the trait
/// defaults, so models carry no duplicate batch methods.
macro_rules! impl_classifier {
    ($($ty:ty),+ $(,)?) => {$(
        impl Classifier for $ty {
            fn predict_one(&self, row: &[f64]) -> usize {
                <$ty>::predict_one(self, row)
            }
        }
    )+};
}

impl_classifier!(
    crate::tree::DecisionTree,
    crate::forest::RandomForest,
    crate::svm::SvmClassifier,
    crate::nn::NeuralNet,
    crate::knn::KnnClassifier,
    crate::gbdt::GbdtClassifier,
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::tree::{DecisionTree, TreeConfig};
    use libra_util::rng::rng_from_seed;

    #[test]
    fn trait_surfaces_agree_with_predict_one() {
        let data = Dataset::new(
            vec![vec![0.0], vec![0.2], vec![1.0], vec![1.2]],
            vec![0, 0, 1, 1],
            2,
            vec!["x".into()],
        );
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = rng_from_seed(1);
        tree.fit(&data, &mut rng);
        let via_trait: &dyn Classifier = &tree;
        let per_row: Vec<usize> = data.rows().map(|r| tree.predict_one(r)).collect();
        assert_eq!(via_trait.predict_view(&data.view()), per_row);
        let mut out = vec![99; 2];
        via_trait.predict_batch_into(&data.view(), &mut out);
        assert_eq!(out, per_row);
        assert_eq!(via_trait.predict_one(&[0.1]), tree.predict_one(&[0.1]));
    }
}
