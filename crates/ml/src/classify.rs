//! The shared prediction-only interface.
//!
//! Training and serving have different shapes: fitting wants hyper-
//! parameters, an RNG, and a mutable model, while serving only ever asks
//! "which class is this row?". [`Classifier`] captures the serving half,
//! so simulators, compiled inference engines (`libra_infer`), and the
//! fitted models of this crate are interchangeable behind one trait.

/// A fitted classifier: maps feature rows to class indices.
///
/// Implementors must be deterministic — the same row always yields the
/// same class — and `predict` must agree element-wise with repeated
/// `predict_one` calls (the default implementation guarantees this).
pub trait Classifier {
    /// Predicted class index for one feature row.
    fn predict_one(&self, row: &[f64]) -> usize;

    /// Predicted class indices for many rows.
    fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        rows.iter().map(|r| self.predict_one(r)).collect()
    }
}

/// Forwards the trait to the inherent `predict_one`/`predict` methods
/// every fitted model in this crate already provides.
macro_rules! impl_classifier {
    ($($ty:ty),+ $(,)?) => {$(
        impl Classifier for $ty {
            fn predict_one(&self, row: &[f64]) -> usize {
                <$ty>::predict_one(self, row)
            }
            fn predict(&self, rows: &[Vec<f64>]) -> Vec<usize> {
                <$ty>::predict(self, rows)
            }
        }
    )+};
}

impl_classifier!(
    crate::tree::DecisionTree,
    crate::forest::RandomForest,
    crate::svm::SvmClassifier,
    crate::nn::NeuralNet,
    crate::knn::KnnClassifier,
    crate::gbdt::GbdtClassifier,
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::tree::{DecisionTree, TreeConfig};
    use libra_util::rng::rng_from_seed;

    #[test]
    fn trait_and_inherent_predictions_agree() {
        let data = Dataset::new(
            vec![vec![0.0], vec![0.2], vec![1.0], vec![1.2]],
            vec![0, 0, 1, 1],
            2,
            vec!["x".into()],
        );
        let mut tree = DecisionTree::new(TreeConfig::default());
        let mut rng = rng_from_seed(1);
        tree.fit(&data, &mut rng);
        let via_trait: &dyn Classifier = &tree;
        let rows = data.to_rows();
        assert_eq!(via_trait.predict(&rows), tree.predict(&rows));
        assert_eq!(via_trait.predict_one(&[0.1]), tree.predict_one(&[0.1]));
    }
}
