//! Gradient-boosted decision trees (logistic loss, Newton leaves).
//!
//! Not part of the paper's model set — included in the extended model
//! comparison as the strongest classical competitor to random forests.
//! The implementation follows the standard second-order formulation
//! (XGBoost-style): per boosting round a regression tree is fitted to
//! the gradient/hessian statistics of the logistic loss, split gain is
//! `Σg²/(Σh + λ)`, and leaf values are Newton steps `Σg/(Σh + λ)`.
//! Multi-class problems train one booster per class (one-vs-rest).

use crate::data::FrameView;
use crate::tree::ColMatrix;
use libra_obs as obs;
use serde::{Deserialize, Serialize};

/// GBDT hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds per class.
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Minimum rows per leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (λ).
    pub lambda: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 60,
            learning_rate: 0.15,
            max_depth: 3,
            min_samples_leaf: 4,
            lambda: 1.0,
        }
    }
}

/// One node of a fitted regression tree in the flat, index-linked export
/// form produced by [`GbdtClassifier::dump_boosters`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DumpRegNode {
    /// A leaf carrying its Newton-step value.
    Leaf {
        /// Value added to the booster's raw score.
        value: f64,
    },
    /// An internal split; `row[feature] <= threshold` goes left.
    Split {
        /// Feature column tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Index of the left child in the dump vector.
        left: usize,
        /// Index of the right child in the dump vector.
        right: usize,
    },
}

/// A regression tree over gradient/hessian statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<RegNode>,
        right: Box<RegNode>,
    },
}

impl RegNode {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            RegNode::Leaf { value } => *value,
            RegNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }

    /// Same walk as `predict`, but reading row `i` of a column matrix
    /// (used during boosting so score updates stay columnar).
    fn predict_at(&self, cm: &ColMatrix, i: usize) -> f64 {
        match self {
            RegNode::Leaf { value } => *value,
            RegNode::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if cm.value(i, *feature) <= *threshold {
                    left.predict_at(cm, i)
                } else {
                    right.predict_at(cm, i)
                }
            }
        }
    }
}

fn leaf_value(g: f64, h: f64, lambda: f64) -> f64 {
    g / (h + lambda)
}

fn gain(g: f64, h: f64, lambda: f64) -> f64 {
    g * g / (h + lambda)
}

/// Builds one regression tree on rows `idx` with per-row gradients `g`
/// and hessians `h`. Each candidate feature is a contiguous column
/// slice of the gathered matrix, so the sort+sweep stays in one run of
/// memory.
fn build_tree(
    cm: &ColMatrix,
    g: &[f64],
    h: &[f64],
    idx: &[usize],
    depth: usize,
    cfg: &GbdtConfig,
) -> RegNode {
    let g_sum: f64 = idx.iter().map(|&i| g[i]).sum();
    let h_sum: f64 = idx.iter().map(|&i| h[i]).sum();
    if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_samples_leaf {
        return RegNode::Leaf {
            value: leaf_value(g_sum, h_sum, cfg.lambda),
        };
    }

    let parent_gain = gain(g_sum, h_sum, cfg.lambda);
    let n_features = cm.n_features();
    let mut best: Option<(usize, f64, f64)> = None; // (feature, thr, gain improvement)

    for f in 0..n_features {
        let col = cm.col(f);
        let mut order: Vec<usize> = idx.to_vec();
        order.sort_by(|&a, &b| col[a].partial_cmp(&col[b]).expect("no NaN features"));
        let mut gl = 0.0;
        let mut hl = 0.0;
        for k in 0..order.len() - 1 {
            let i = order[k];
            gl += g[i];
            hl += h[i];
            let v = col[i];
            let v_next = col[order[k + 1]];
            if v == v_next {
                continue;
            }
            let nl = k + 1;
            let nr = order.len() - nl;
            if nl < cfg.min_samples_leaf || nr < cfg.min_samples_leaf {
                continue;
            }
            let improvement =
                gain(gl, hl, cfg.lambda) + gain(g_sum - gl, h_sum - hl, cfg.lambda) - parent_gain;
            if best
                .as_ref()
                .map_or(improvement > 1e-12, |&(_, _, b)| improvement > b)
            {
                let thr = if v.is_finite() && v_next.is_finite() {
                    (v + v_next) / 2.0
                } else {
                    v
                };
                best = Some((f, thr, improvement));
            }
        }
    }

    let Some((feature, threshold, _)) = best else {
        return RegNode::Leaf {
            value: leaf_value(g_sum, h_sum, cfg.lambda),
        };
    };
    let col = cm.col(feature);
    let (li, ri): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| col[i] <= threshold);
    RegNode::Split {
        feature,
        threshold,
        left: Box::new(build_tree(cm, g, h, &li, depth + 1, cfg)),
        right: Box::new(build_tree(cm, g, h, &ri, depth + 1, cfg)),
    }
}

/// A fitted gradient-boosted classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GbdtClassifier {
    config: GbdtConfig,
    /// One booster (base score + trees) per class.
    boosters: Vec<(f64, Vec<RegNode>)>,
    n_classes: usize,
}

impl GbdtClassifier {
    /// Creates an unfitted classifier.
    pub fn new(config: GbdtConfig) -> Self {
        Self {
            config,
            boosters: Vec::new(),
            n_classes: 0,
        }
    }

    /// Trains one-vs-rest boosters from a frame or view.
    pub fn fit<'a>(&mut self, data: impl Into<FrameView<'a>>) {
        let _span = obs::span("ml.gbdt.fit");
        let data = data.into();
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        self.n_classes = data.n_classes();
        let n = data.len();
        let cm = ColMatrix::from_view(&data);
        let idx: Vec<usize> = (0..n).collect();
        self.boosters = (0..self.n_classes)
            .map(|c| {
                let y: Vec<f64> = (0..n)
                    .map(|i| if cm.label(i) == c { 1.0 } else { 0.0 })
                    .collect();
                let pos = y.iter().sum::<f64>().clamp(1e-6, n as f64 - 1e-6);
                let base = (pos / (n as f64 - pos)).ln();
                let mut scores = vec![base; n];
                let mut trees = Vec::with_capacity(self.config.n_rounds);
                for _ in 0..self.config.n_rounds {
                    let mut g = vec![0.0; n];
                    let mut h = vec![0.0; n];
                    for i in 0..n {
                        let p = sigmoid(scores[i]);
                        g[i] = y[i] - p;
                        h[i] = (p * (1.0 - p)).max(1e-9);
                    }
                    let tree = build_tree(&cm, &g, &h, &idx, 0, &self.config);
                    for i in 0..n {
                        scores[i] += self.config.learning_rate * tree.predict_at(&cm, i);
                    }
                    trees.push(tree);
                }
                (base, trees)
            })
            .collect();
    }

    /// Per-class raw scores (log-odds) for one row.
    pub fn decision_scores(&self, row: &[f64]) -> Vec<f64> {
        assert!(!self.boosters.is_empty(), "GBDT not fitted");
        self.boosters
            .iter()
            .map(|(base, trees)| {
                base + self.config.learning_rate * trees.iter().map(|t| t.predict(row)).sum::<f64>()
            })
            .collect()
    }

    /// Predicted class for one row.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        let scores = self.decision_scores(row);
        scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    /// Number of trees in each booster.
    pub fn n_trees(&self) -> usize {
        self.boosters.first().map_or(0, |(_, t)| t.len())
    }

    /// Number of classes the classifier was fitted on.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The shrinkage applied to every tree's contribution.
    pub fn learning_rate(&self) -> f64 {
        self.config.learning_rate
    }

    /// Exports each class's booster as `(base score, flat trees)` in
    /// class order — the raw material inference engines compile from.
    /// Within each tree, node 0 is the root and child fields index into
    /// that tree's dump vector.
    pub fn dump_boosters(&self) -> Vec<(f64, Vec<Vec<DumpRegNode>>)> {
        fn walk(node: &RegNode, out: &mut Vec<DumpRegNode>) -> usize {
            match node {
                RegNode::Leaf { value } => {
                    out.push(DumpRegNode::Leaf { value: *value });
                    out.len() - 1
                }
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let at = out.len();
                    out.push(DumpRegNode::Split {
                        feature: *feature,
                        threshold: *threshold,
                        left: 0,
                        right: 0,
                    });
                    let li = walk(left, out);
                    let ri = walk(right, out);
                    if let DumpRegNode::Split { left, right, .. } = &mut out[at] {
                        *left = li;
                        *right = ri;
                    }
                    at
                }
            }
        }
        self.boosters
            .iter()
            .map(|(base, trees)| {
                let flat = trees
                    .iter()
                    .map(|t| {
                        let mut out = Vec::new();
                        walk(t, &mut out);
                        out
                    })
                    .collect();
                (*base, flat)
            })
            .collect()
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use crate::data::Dataset;
    use crate::metrics::accuracy;
    use libra_util::rng::{rng_from_seed, standard_normal};
    use rand::Rng as _;

    fn moons(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let t = std::f64::consts::PI * (i as f64 / n as f64);
            let c = i % 2;
            let (mut x, mut y) = if c == 0 {
                (t.cos(), t.sin())
            } else {
                (1.0 - t.cos(), 0.5 - t.sin())
            };
            x += 0.12 * standard_normal(&mut rng);
            y += 0.12 * standard_normal(&mut rng);
            features.push(vec![x, y]);
            labels.push(c);
        }
        Dataset::new(features, labels, 2, vec!["x".into(), "y".into()])
    }

    #[test]
    fn fits_moons() {
        let train = moons(300, 1);
        let test = moons(120, 2);
        let mut g = GbdtClassifier::new(GbdtConfig::default());
        g.fit(&train);
        let acc = accuracy(&test.labels, &g.predict_view(&test.view()));
        assert!(acc > 0.92, "accuracy {acc}");
        assert_eq!(g.n_trees(), 60);
    }

    #[test]
    fn three_class_one_vs_rest() {
        let mut rng = rng_from_seed(3);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..240 {
            let c = i % 3;
            let center = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)][c];
            features.push(vec![
                center.0 + standard_normal(&mut rng) * 0.5,
                center.1 + standard_normal(&mut rng) * 0.5,
            ]);
            labels.push(c);
        }
        let data = Dataset::new(features, labels, 3, vec!["x".into(), "y".into()]);
        let mut g = GbdtClassifier::new(GbdtConfig {
            n_rounds: 30,
            ..Default::default()
        });
        g.fit(&data);
        let acc = accuracy(&data.labels, &g.predict_view(&data.view()));
        assert!(acc > 0.96, "accuracy {acc}");
        assert_eq!(g.decision_scores(data.row(0)).len(), 3);
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let train = moons(200, 4);
        let fit_with = |rounds| {
            let mut g = GbdtClassifier::new(GbdtConfig {
                n_rounds: rounds,
                ..Default::default()
            });
            g.fit(&train);
            accuracy(&train.labels, &g.predict_view(&train.view()))
        };
        assert!(fit_with(60) >= fit_with(5) - 1e-9);
    }

    #[test]
    fn deterministic() {
        let train = moons(100, 5);
        let run = || {
            let mut g = GbdtClassifier::new(GbdtConfig {
                n_rounds: 10,
                ..Default::default()
            });
            g.fit(&train);
            g.predict_view(&train.view())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn handles_noisy_labels_gracefully() {
        // Flip 10 % of labels: training accuracy should stay below 100 %
        // (depth-3 trees cannot memorize) but test accuracy on clean data
        // should stay strong.
        let mut train = moons(300, 6);
        let mut rng = rng_from_seed(7);
        for l in train.labels.iter_mut() {
            if rng.gen::<f64>() < 0.1 {
                *l = 1 - *l;
            }
        }
        let clean = moons(150, 8);
        let mut g = GbdtClassifier::new(GbdtConfig::default());
        g.fit(&train);
        let acc = accuracy(&clean.labels, &g.predict_view(&clean.view()));
        assert!(acc > 0.85, "accuracy {acc}");
    }
}
