//! k-nearest-neighbours classification.
//!
//! Not part of the paper's model set — included as a cheap instance-based
//! baseline for the extended model comparison. Inputs are standardized
//! internally (distances are scale-sensitive); ties in the vote break
//! toward the nearer neighbours.

use crate::data::{FeatureFrame, FrameView, Standardizer};
use serde::{Deserialize, Serialize};

/// k-NN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Number of neighbours consulted.
    pub k: usize,
    /// Weight votes by inverse distance instead of uniformly.
    pub distance_weighted: bool,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 5,
            distance_weighted: true,
        }
    }
}

/// A fitted k-NN classifier. The standardized training set is memorized
/// as a single columnar [`FeatureFrame`] — one flat allocation, no
/// per-row clones.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnClassifier {
    config: KnnConfig,
    train: Option<FeatureFrame>,
    standardizer: Option<Standardizer>,
}

impl KnnClassifier {
    /// Creates an unfitted classifier.
    pub fn new(config: KnnConfig) -> Self {
        assert!(config.k >= 1, "k must be at least 1");
        Self {
            config,
            train: None,
            standardizer: None,
        }
    }

    /// "Fits" by memorizing the standardized training set.
    pub fn fit<'a>(&mut self, data: impl Into<FrameView<'a>>) {
        let data = data.into();
        assert!(!data.is_empty(), "cannot fit on empty dataset");
        let std = Standardizer::fit(&data);
        self.train = Some(std.transform(&data));
        self.standardizer = Some(std);
    }

    /// Predicted class for one row.
    pub fn predict_one(&self, row: &[f64]) -> usize {
        let train = self.train.as_ref().expect("k-NN not fitted");
        let std = self.standardizer.as_ref().expect("k-NN not fitted");
        let q = std.transform_row(row);
        // Distances to all training rows (datasets here are small).
        let mut dists: Vec<(f64, usize)> = train
            .rows()
            .zip(train.labels.iter())
            .map(|(x, &y)| {
                let d2: f64 = x.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, y)
            })
            .collect();
        let k = self.config.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut votes = vec![0.0f64; train.n_classes];
        for &(d2, y) in &dists[..k] {
            let w = if self.config.distance_weighted {
                1.0 / (d2.sqrt() + 1e-9)
            } else {
                1.0
            };
            votes[y] += w;
        }
        votes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use crate::data::Dataset;
    use crate::metrics::accuracy;
    use libra_util::rng::{rng_from_seed, standard_normal};

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = rng_from_seed(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 3;
            let center = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)][c];
            features.push(vec![
                center.0 + standard_normal(&mut rng) * 0.6,
                center.1 + standard_normal(&mut rng) * 0.6,
            ]);
            labels.push(c);
        }
        Dataset::new(features, labels, 3, vec!["x".into(), "y".into()])
    }

    #[test]
    fn classifies_blobs() {
        let train = blobs(150, 1);
        let test = blobs(60, 2);
        let mut knn = KnnClassifier::new(KnnConfig::default());
        knn.fit(&train);
        let acc = accuracy(&test.labels, &knn.predict_view(&test.view()));
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn k1_memorizes_training_set() {
        let train = blobs(80, 3);
        let mut knn = KnnClassifier::new(KnnConfig {
            k: 1,
            distance_weighted: false,
        });
        knn.fit(&train);
        let acc = accuracy(&train.labels, &knn.predict_view(&train.view()));
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let train = blobs(6, 4);
        let mut knn = KnnClassifier::new(KnnConfig {
            k: 50,
            distance_weighted: false,
        });
        knn.fit(&train);
        // With k = n and uniform weights this is just the majority class.
        let p = knn.predict_one(&[0.0, 0.0]);
        assert!(p < 3);
    }

    #[test]
    fn distance_weighting_beats_uniform_on_boundary_points() {
        let train = blobs(150, 5);
        let mut uni = KnnClassifier::new(KnnConfig {
            k: 15,
            distance_weighted: false,
        });
        let mut wei = KnnClassifier::new(KnnConfig {
            k: 15,
            distance_weighted: true,
        });
        uni.fit(&train);
        wei.fit(&train);
        let test = blobs(100, 6);
        let au = accuracy(&test.labels, &uni.predict_view(&test.view()));
        let aw = accuracy(&test.labels, &wei.predict_view(&test.view()));
        assert!(
            aw + 0.05 >= au,
            "weighted {aw} much worse than uniform {au}"
        );
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn rejects_zero_k() {
        KnnClassifier::new(KnnConfig {
            k: 0,
            distance_weighted: false,
        });
    }
}
