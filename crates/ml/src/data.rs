//! Dataset containers and splitting utilities.
//!
//! [`Dataset`] is the tabular form every model consumes: rows of `f64`
//! features plus integer class labels. Splitting follows the paper's
//! protocol: *stratified* k-fold cross validation with shuffling (§6.2
//! runs "a stratified 5-fold cross validation on the entire dataset ...
//! repeated 500 times with random splits").

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A tabular classification dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature rows; all rows have `n_features()` columns.
    pub features: Vec<Vec<f64>>,
    /// Class label per row, in `0..n_classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
    /// Column names (for importance tables).
    pub feature_names: Vec<String>,
}

impl Dataset {
    /// Builds a dataset, validating shape invariants.
    pub fn new(
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
        n_classes: usize,
        feature_names: Vec<String>,
    ) -> Self {
        assert_eq!(features.len(), labels.len(), "row/label count mismatch");
        assert!(n_classes >= 2, "need at least two classes");
        if let Some(first) = features.first() {
            assert!(
                features.iter().all(|r| r.len() == first.len()),
                "ragged feature rows"
            );
            assert_eq!(feature_names.len(), first.len(), "name/column mismatch");
        }
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");
        assert!(
            features.iter().flatten().all(|v| !v.is_nan()),
            "NaN features must be sanitized before model fitting"
        );
        Self {
            features,
            labels,
            n_classes,
            feature_names,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Rows with the given indices, as a new dataset.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            features: idx.iter().map(|&i| self.features[i].clone()).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
            feature_names: self.feature_names.clone(),
        }
    }

    /// Per-class row counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Stratified k-fold split: returns `k` disjoint index sets whose
    /// class proportions match the full dataset. Rows are shuffled first.
    pub fn stratified_folds(&self, k: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least 2 folds");
        let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes];
        for (i, &l) in self.labels.iter().enumerate() {
            by_class[l].push(i);
        }
        let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
        for class_idx in &mut by_class {
            class_idx.shuffle(rng);
            for (j, &row) in class_idx.iter().enumerate() {
                folds[j % k].push(row);
            }
        }
        folds
    }

    /// Per-column mean and standard deviation (for standardization).
    pub fn column_stats(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.len().max(1) as f64;
        let d = self.n_features();
        let mut mean = vec![0.0; d];
        for row in &self.features {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v / n;
            }
        }
        let mut sd = vec![0.0; d];
        for row in &self.features {
            for ((s, &v), m) in sd.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut sd {
            *s = s.sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: leave unscaled
            }
        }
        (mean, sd)
    }
}

/// A fitted standardizer (`z = (x − μ)/σ` per column). SVM and the neural
/// network need standardized inputs; trees do not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    sd: Vec<f64>,
}

impl Standardizer {
    /// Fits to a dataset's columns.
    pub fn fit(data: &Dataset) -> Self {
        let (mean, sd) = data.column_stats();
        Self { mean, sd }
    }

    /// Transforms one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.mean.iter().zip(&self.sd))
            .map(|(&v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transforms a whole dataset.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        Dataset {
            features: data
                .features
                .iter()
                .map(|r| self.transform_row(r))
                .collect(),
            labels: data.labels.clone(),
            n_classes: data.n_classes,
            feature_names: data.feature_names.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_util::rng::rng_from_seed;

    fn toy(n_per_class: usize) -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n_per_class {
                features.push(vec![c as f64 * 10.0 + i as f64, -(c as f64)]);
                labels.push(c);
            }
        }
        Dataset::new(features, labels, 2, vec!["a".into(), "b".into()])
    }

    #[test]
    fn shape_accessors() {
        let d = toy(5);
        assert_eq!(d.len(), 10);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_mismatched_labels() {
        Dataset::new(vec![vec![1.0]], vec![0, 1], 2, vec!["a".into()]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_features() {
        Dataset::new(vec![vec![f64::NAN]], vec![0], 2, vec!["a".into()]);
    }

    #[test]
    fn stratified_folds_preserve_ratio() {
        let d = toy(25); // 25 per class
        let mut rng = rng_from_seed(1);
        let folds = d.stratified_folds(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(Vec::len).sum();
        assert_eq!(total, 50);
        for fold in &folds {
            let c0 = fold.iter().filter(|&&i| d.labels[i] == 0).count();
            let c1 = fold.len() - c0;
            assert_eq!(c0, 5);
            assert_eq!(c1, 5);
        }
    }

    #[test]
    fn folds_are_disjoint_and_cover() {
        let d = toy(10);
        let mut rng = rng_from_seed(2);
        let folds = d.stratified_folds(4, &mut rng);
        let mut all: Vec<usize> = folds.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy(3);
        let s = d.subset(&[0, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 1]);
    }

    #[test]
    fn standardizer_zero_mean_unit_sd() {
        let d = toy(50);
        let std = Standardizer::fit(&d);
        let t = std.transform(&d);
        let (mean, sd) = t.column_stats();
        assert!(mean.iter().all(|m| m.abs() < 1e-9));
        assert!(sd.iter().all(|s| (s - 1.0).abs() < 1e-9));
    }

    #[test]
    fn standardizer_handles_constant_column() {
        let d = Dataset::new(
            vec![vec![5.0, 1.0], vec![5.0, 2.0]],
            vec![0, 1],
            2,
            vec!["c".into(), "v".into()],
        );
        let std = Standardizer::fit(&d);
        let t = std.transform(&d);
        assert!(t.features.iter().flatten().all(|v| v.is_finite()));
    }
}
