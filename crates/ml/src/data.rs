//! Dataset container and standardization.
//!
//! [`Dataset`] is the tabular form every model consumes. Since the
//! columnar refactor it is an alias for [`libra_util::frame::FeatureFrame`]:
//! one flat row-major allocation with labels, class count, and feature
//! names attached, handed to models as zero-copy [`FrameView`] borrows.
//! Splitting follows the paper's protocol: *stratified* k-fold cross
//! validation with shuffling (§6.2 runs "a stratified 5-fold cross
//! validation on the entire dataset ... repeated 500 times with random
//! splits") — folds are index lists over the shared frame, not cloned
//! sub-datasets.

use serde::{Deserialize, Serialize};

pub use libra_util::frame::{FeatureFrame, FrameView};

/// The tabular dataset type consumed by every model: a columnar
/// [`FeatureFrame`]. Construct with [`FeatureFrame::new`] from
/// row-oriented input, or grow one with [`FeatureFrame::push_row`].
pub type Dataset = FeatureFrame;

/// A fitted standardizer (`z = (x − μ)/σ` per column). SVM and the neural
/// network need standardized inputs; trees do not.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    sd: Vec<f64>,
}

impl Standardizer {
    /// Fits to the columns of a frame (or any view of one).
    pub fn fit<'a>(data: impl Into<FrameView<'a>>) -> Self {
        let (mean, sd) = data.into().column_stats();
        Self { mean, sd }
    }

    /// Transforms one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(self.mean.iter().zip(&self.sd))
            .map(|(&v, (m, s))| (v - m) / s)
            .collect()
    }

    /// Transforms a whole frame (or view) into a new owned frame.
    pub fn transform<'a>(&self, data: impl Into<FrameView<'a>>) -> FeatureFrame {
        let data = data.into();
        let mut out = FeatureFrame::with_schema(data.n_classes(), data.feature_names().to_vec());
        for i in 0..data.len() {
            out.push_row(&self.transform_row(data.row(i)), data.label(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_util::rng::rng_from_seed;

    fn toy(n_per_class: usize) -> Dataset {
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2usize {
            for i in 0..n_per_class {
                features.push(vec![c as f64 * 10.0 + i as f64, -(c as f64)]);
                labels.push(c);
            }
        }
        Dataset::new(features, labels, 2, vec!["a".into(), "b".into()])
    }

    #[test]
    fn shape_accessors() {
        let d = toy(5);
        assert_eq!(d.len(), 10);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.class_counts(), vec![5, 5]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_mismatched_labels() {
        Dataset::new(vec![vec![1.0]], vec![0, 1], 2, vec!["a".into()]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan_features() {
        Dataset::new(vec![vec![f64::NAN]], vec![0], 2, vec!["a".into()]);
    }

    #[test]
    fn stratified_folds_preserve_ratio() {
        let d = toy(25); // 25 per class
        let mut rng = rng_from_seed(1);
        let folds = d.stratified_folds(5, &mut rng);
        assert_eq!(folds.len(), 5);
        let total: usize = folds.iter().map(Vec::len).sum();
        assert_eq!(total, 50);
        for fold in &folds {
            let c0 = fold.iter().filter(|&&i| d.labels[i] == 0).count();
            let c1 = fold.len() - c0;
            assert_eq!(c0, 5);
            assert_eq!(c1, 5);
        }
    }

    #[test]
    fn folds_are_disjoint_and_cover() {
        let d = toy(10);
        let mut rng = rng_from_seed(2);
        let folds = d.stratified_folds(4, &mut rng);
        let mut all: Vec<usize> = folds.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy(3);
        let s = d.subset(&[0, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.labels, vec![0, 1]);
    }

    #[test]
    fn views_share_storage_with_the_frame() {
        let d = toy(4);
        let idx = [1usize, 6, 3];
        let v = d.select(&idx);
        assert_eq!(v.len(), 3);
        assert_eq!(v.row(1), d.row(6));
        assert_eq!(v.label(2), d.labels[3]);
    }

    #[test]
    fn standardizer_zero_mean_unit_sd() {
        let d = toy(50);
        let std = Standardizer::fit(&d);
        let t = std.transform(&d);
        let (mean, sd) = t.column_stats();
        assert!(mean.iter().all(|m| m.abs() < 1e-9));
        assert!(sd.iter().all(|s| (s - 1.0).abs() < 1e-9));
    }

    #[test]
    fn standardizer_transforms_views_like_frames() {
        let d = toy(10);
        let idx: Vec<usize> = (0..d.len()).collect();
        let std = Standardizer::fit(&d);
        assert_eq!(std.transform(&d), std.transform(d.select(&idx)));
    }

    #[test]
    fn standardizer_handles_constant_column() {
        let d = Dataset::new(
            vec![vec![5.0, 1.0], vec![5.0, 2.0]],
            vec![0, 1],
            2,
            vec!["c".into(), "v".into()],
        );
        let std = Standardizer::fit(&d);
        let t = std.transform(&d);
        assert!(t.rows().flatten().all(|v| v.is_finite()));
    }
}
