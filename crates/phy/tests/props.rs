//! Property-based tests for the PHY model.

use libra_channel::{BeamPairResponse, Tap};
use libra_phy::metrics::{PowerDelayProfile, PDP_BINS};
use libra_phy::trace::{generate_trace, trace_mean_cdr};
use libra_phy::{ErrorModel, FrameConfig, McsTable, TraceJitter};
use libra_util::rng::rng_from_seed;
use proptest::prelude::*;

fn resp_at(snr: f64, taps: Vec<Tap>) -> BeamPairResponse {
    BeamPairResponse {
        taps,
        signal_power_dbm: snr - 74.0,
        thermal_noise_dbm: -74.0,
        interference_dbm: f64::NEG_INFINITY,
        effective_noise_dbm: -74.0,
        snr_db: snr,
        tof_ns: 10.0,
    }
}

proptest! {
    /// CER is a probability, decreasing in SNR, increasing in MCS order
    /// (at fixed SNR above the ladder), and increasing in delay spread.
    #[test]
    fn cer_is_probability_and_monotone(
        snr in -10.0f64..40.0,
        spread in 0.0f64..20.0,
        mcs in 0usize..9,
    ) {
        let t = McsTable::x60();
        let m = ErrorModel::default();
        let e = t.get(mcs);
        let cer = m.cer(e, snr, spread);
        prop_assert!((0.0..=1.0).contains(&cer));
        // More SNR → no worse.
        prop_assert!(m.cer(e, snr + 1.0, spread) <= cer + 1e-12);
        // More delay spread → no better.
        prop_assert!(m.cer(e, snr, spread + 1.0) >= cer - 1e-12);
    }

    /// Expected throughput never exceeds the PHY rate and is
    /// non-negative.
    #[test]
    fn throughput_bounded(snr in -10.0f64..40.0, spread in 0.0f64..20.0, mcs in 0usize..9) {
        let t = McsTable::x60();
        let m = ErrorModel::default();
        let e = t.get(mcs);
        let tput = m.expected_throughput_mbps(e, snr, spread);
        prop_assert!(tput >= 0.0 && tput <= e.rate_mbps + 1e-9);
    }

    /// `best_mcs` is truly the argmax over the table.
    #[test]
    fn best_mcs_is_argmax(snr in -5.0f64..35.0) {
        let t = McsTable::x60();
        let m = ErrorModel::default();
        let resp = resp_at(snr, vec![]);
        let best = m.best_mcs(&t, &resp);
        let best_tput = m.throughput_for_response(&t, best, &resp);
        for e in t.iter() {
            prop_assert!(
                best_tput >= m.throughput_for_response(&t, e.index, &resp) - 1e-9
            );
        }
    }

    /// A generated trace's mean CDR concentrates near the model's
    /// expected CDR (law of large numbers over ~9200 codewords/frame).
    #[test]
    fn trace_cdr_concentrates(snr in 0.0f64..30.0, mcs in 0usize..9, seed in 0u64..1000) {
        let t = McsTable::x60();
        let m = ErrorModel::default();
        let f = FrameConfig::x60();
        let resp = resp_at(snr, vec![]);
        let mut rng = rng_from_seed(seed);
        let trace = generate_trace(&t, &m, &f, &resp, mcs, 60, &TraceJitter::none(), &mut rng);
        let expect = m.cdr(t.get(mcs), snr, 0.0);
        let got = trace_mean_cdr(&trace);
        prop_assert!((got - expect).abs() < 0.05, "expect {expect} got {got}");
    }

    /// Frame logs never report impossible values.
    #[test]
    fn frame_logs_in_range(snr in -5.0f64..35.0, mcs in 0usize..9, seed in 0u64..50) {
        let t = McsTable::x60();
        let m = ErrorModel::default();
        let f = FrameConfig::x60();
        let resp = resp_at(snr, vec![]);
        let mut rng = rng_from_seed(seed);
        let trace =
            generate_trace(&t, &m, &f, &resp, mcs, 30, &TraceJitter::default(), &mut rng);
        for log in &trace {
            prop_assert!((0.0..=1.0).contains(&log.cdr));
            prop_assert!(log.tput_mbps >= 0.0);
            prop_assert!(log.tput_mbps <= t.get(mcs).rate_mbps + 1e-9);
            prop_assert!(log.snr_db.is_finite());
        }
    }

    /// PDP bins are non-negative; CSI estimates are non-negative and the
    /// DC bin carries the total amplitude.
    #[test]
    fn pdp_and_csi_non_negative(powers in prop::collection::vec(-90.0f64..-40.0, 1..6)) {
        let taps: Vec<Tap> = powers
            .iter()
            .enumerate()
            .map(|(i, &p)| Tap {
                delay_ns: 10.0 + 3.0 * i as f64,
                power_dbm: p,
                aod_local_deg: 0.0,
                aoa_local_deg: 0.0,
                order: i.min(2),
            })
            .collect();
        let pdp = PowerDelayProfile::from_response(&resp_at(20.0, taps));
        prop_assert_eq!(pdp.bins().len(), PDP_BINS);
        prop_assert!(pdp.bins().iter().all(|&b| b >= 0.0));
        let csi = pdp.csi_estimate();
        prop_assert!(csi.iter().all(|&c| c >= -1e-12));
        // DC bin = sum of amplitudes ≥ any other bin magnitude.
        prop_assert!(csi.iter().all(|&c| c <= csi[0] + 1e-9));
    }

    /// Self-similarity is always exactly 1 for a non-degenerate PDP.
    #[test]
    fn pdp_self_similarity(powers in prop::collection::vec(-90.0f64..-40.0, 2..6)) {
        let taps: Vec<Tap> = powers
            .iter()
            .enumerate()
            .map(|(i, &p)| Tap {
                delay_ns: 10.0 + 4.0 * i as f64,
                power_dbm: p,
                aod_local_deg: 0.0,
                aoa_local_deg: 0.0,
                order: 0,
            })
            .collect();
        let pdp = PowerDelayProfile::from_response(&resp_at(20.0, taps));
        prop_assert!((pdp.similarity(&pdp) - 1.0).abs() < 1e-9);
        prop_assert!((pdp.csi_similarity(&pdp) - 1.0).abs() < 1e-9);
    }

    /// Frame config arithmetic is self-consistent for any FAT.
    #[test]
    fn frame_config_consistent(fat_ms in 0.5f64..50.0) {
        let f = FrameConfig::with_fat_ms(fat_ms);
        prop_assert!((f.frame_duration_ms() - fat_ms).abs() < 1e-9);
        prop_assert!(f.codewords_per_frame() > 0);
        let full = f.bytes_per_frame(1000.0, 1.0);
        let half = f.bytes_per_frame(1000.0, 0.5);
        prop_assert!((full - 2.0 * half).abs() < 1e-6);
    }
}
