//! Per-frame PHY trace generation.
//!
//! X60 "logs all these metrics for every frame" (§5.1); the dataset
//! entries and the trace-based simulation of §8 are built from 1 s (100
//! frame) logs. This module generates those logs: given a channel
//! observation and an MCS, it produces a sequence of [`FrameLog`]s with
//! realistic frame-to-frame variation:
//!
//! * SNR follows an AR(1) process around the deterministic mean (thermal
//!   drift, micro-motion);
//! * delivered codewords are drawn from a binomial with the per-frame
//!   error probability (normal approximation — frames carry thousands of
//!   codewords);
//! * the noise-level reading carries measurement jitter (the paper notes
//!   X60's noise readings "span a large range ... even in the absence of
//!   interference", §6.2).

use crate::error_model::ErrorModel;
use crate::framing::FrameConfig;
use crate::mcs::{McsIndex, McsTable};
use libra_channel::BeamPairResponse;
use libra_util::rng::standard_normal as sample_standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What one frame's log line carries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameLog {
    /// Measured SNR for this frame, dB.
    pub snr_db: f64,
    /// Measured noise level, dBm.
    pub noise_dbm: f64,
    /// Codeword delivery ratio in this frame, `[0, 1]`.
    pub cdr: f64,
    /// MAC throughput achieved by this frame, Mbps.
    pub tput_mbps: f64,
    /// MCS used.
    pub mcs: McsIndex,
}

/// Stochastic parameters of the trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceJitter {
    /// Standard deviation of the AR(1) SNR process, dB.
    pub snr_sigma_db: f64,
    /// AR(1) coefficient (`0` = white, `→1` = slow drift).
    pub snr_rho: f64,
    /// Noise-level measurement jitter, dB.
    pub noise_sigma_db: f64,
}

impl Default for TraceJitter {
    fn default() -> Self {
        Self {
            snr_sigma_db: 0.5,
            snr_rho: 0.7,
            noise_sigma_db: 1.5,
        }
    }
}

impl TraceJitter {
    /// No jitter at all (deterministic traces for tests/ablations).
    pub fn none() -> Self {
        Self {
            snr_sigma_db: 0.0,
            snr_rho: 0.0,
            noise_sigma_db: 0.0,
        }
    }
}

/// Generates `n_frames` frame logs for transmitting at `mcs` over the
/// channel `resp`.
pub fn generate_trace(
    table: &McsTable,
    model: &ErrorModel,
    frame: &FrameConfig,
    resp: &BeamPairResponse,
    mcs: McsIndex,
    n_frames: usize,
    jitter: &TraceJitter,
    rng: &mut impl Rng,
) -> Vec<FrameLog> {
    let entry = table.get(mcs);
    let spread = resp.rms_delay_spread_ns();
    let cw_per_frame = frame.codewords_per_frame() as f64;
    let mut ar_state = 0.0f64;
    // Innovation sd so the AR(1) process has stationary sd = snr_sigma.
    let innov_sd = jitter.snr_sigma_db * (1.0 - jitter.snr_rho * jitter.snr_rho).sqrt();
    (0..n_frames)
        .map(|_| {
            ar_state = jitter.snr_rho * ar_state + innov_sd * sample_standard_normal(rng);
            let snr = resp.snr_db + ar_state;
            let noise =
                resp.effective_noise_dbm + jitter.noise_sigma_db * sample_standard_normal(rng);
            let p = model.cdr(entry, snr, spread).clamp(0.0, 1.0);
            // Binomial(n, p) via normal approximation (n ≈ 9200).
            let mean = cw_per_frame * p;
            let sd = (cw_per_frame * p * (1.0 - p)).sqrt();
            let delivered = (mean + sd * sample_standard_normal(rng))
                .round()
                .clamp(0.0, cw_per_frame);
            let cdr = delivered / cw_per_frame;
            FrameLog {
                snr_db: snr,
                noise_dbm: noise,
                cdr,
                tput_mbps: entry.rate_mbps * cdr,
                mcs,
            }
        })
        .collect()
}

/// Mean throughput over a trace, Mbps.
pub fn trace_mean_tput_mbps(trace: &[FrameLog]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().map(|f| f.tput_mbps).sum::<f64>() / trace.len() as f64
}

/// Mean CDR over a trace.
pub fn trace_mean_cdr(trace: &[FrameLog]) -> f64 {
    if trace.is_empty() {
        return 0.0;
    }
    trace.iter().map(|f| f.cdr).sum::<f64>() / trace.len() as f64
}

/// Mean SNR over a trace, dB.
pub fn trace_mean_snr_db(trace: &[FrameLog]) -> f64 {
    if trace.is_empty() {
        return f64::NAN;
    }
    trace.iter().map(|f| f.snr_db).sum::<f64>() / trace.len() as f64
}

/// Mean noise level over a trace, dBm.
pub fn trace_mean_noise_dbm(trace: &[FrameLog]) -> f64 {
    if trace.is_empty() {
        return f64::NAN;
    }
    trace.iter().map(|f| f.noise_dbm).sum::<f64>() / trace.len() as f64
}

pub use libra_util::rng::standard_normal;

#[cfg(test)]
mod tests {
    use super::*;
    use libra_util::rng::rng_from_seed;

    fn resp_at(snr: f64) -> BeamPairResponse {
        BeamPairResponse {
            taps: vec![],
            signal_power_dbm: snr - 74.0,
            thermal_noise_dbm: -74.0,
            interference_dbm: f64::NEG_INFINITY,
            effective_noise_dbm: -74.0,
            snr_db: snr,
            tof_ns: 20.0,
        }
    }

    #[test]
    fn trace_length_and_mcs() {
        let mut rng = rng_from_seed(1);
        let t = McsTable::x60();
        let logs = generate_trace(
            &t,
            &ErrorModel::default(),
            &FrameConfig::x60(),
            &resp_at(25.0),
            4,
            100,
            &TraceJitter::default(),
            &mut rng,
        );
        assert_eq!(logs.len(), 100);
        assert!(logs.iter().all(|l| l.mcs == 4));
    }

    #[test]
    fn high_snr_mean_cdr_near_one() {
        let mut rng = rng_from_seed(3);
        let t = McsTable::x60();
        let logs = generate_trace(
            &t,
            &ErrorModel::default(),
            &FrameConfig::x60(),
            &resp_at(35.0),
            8,
            200,
            &TraceJitter::default(),
            &mut rng,
        );
        assert!(trace_mean_cdr(&logs) > 0.99);
        assert!(trace_mean_tput_mbps(&logs) > 4700.0);
    }

    #[test]
    fn low_snr_trace_delivers_nothing() {
        let mut rng = rng_from_seed(4);
        let t = McsTable::x60();
        let logs = generate_trace(
            &t,
            &ErrorModel::default(),
            &FrameConfig::x60(),
            &resp_at(2.0),
            8,
            200,
            &TraceJitter::default(),
            &mut rng,
        );
        assert!(trace_mean_cdr(&logs) < 0.01);
    }

    #[test]
    fn no_jitter_is_deterministic() {
        let t = McsTable::x60();
        let run = |seed| {
            let mut rng = rng_from_seed(seed);
            generate_trace(
                &t,
                &ErrorModel::default(),
                &FrameConfig::x60(),
                &resp_at(20.0),
                5,
                50,
                &TraceJitter::none(),
                &mut rng,
            )
        };
        let a = run(1);
        let b = run(999);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.snr_db, y.snr_db);
            assert_eq!(x.cdr, y.cdr);
        }
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let t = McsTable::x60();
        let run = || {
            let mut rng = rng_from_seed(77);
            generate_trace(
                &t,
                &ErrorModel::default(),
                &FrameConfig::x60(),
                &resp_at(15.0),
                3,
                50,
                &TraceJitter::default(),
                &mut rng,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snr_jitter_has_right_scale() {
        let mut rng = rng_from_seed(5);
        let t = McsTable::x60();
        let logs = generate_trace(
            &t,
            &ErrorModel::default(),
            &FrameConfig::x60(),
            &resp_at(20.0),
            5,
            5000,
            &TraceJitter::default(),
            &mut rng,
        );
        let snrs: Vec<f64> = logs.iter().map(|l| l.snr_db).collect();
        let sd = libra_util::stats::stddev(&snrs);
        assert!((sd - 0.5).abs() < 0.1, "AR(1) sd {sd}");
        assert!((trace_mean_snr_db(&logs) - 20.0).abs() < 0.1);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(6);
        let xs: Vec<f64> = (0..20000).map(|_| standard_normal(&mut rng)).collect();
        assert!(libra_util::stats::mean(&xs).abs() < 0.03);
        assert!((libra_util::stats::stddev(&xs) - 1.0).abs() < 0.03);
    }
}
