//! PHY-layer metric extraction: power delay profiles, CSI estimates, and
//! the similarity measures of paper §6.1.
//!
//! X60 logs, per frame: SNR, noise level, PDP, and CDR; ToF is measured
//! offline (§5.1). This module turns a channel observation
//! ([`BeamPairResponse`]) into the discretized PDP the hardware would
//! log, and computes the derived quantities:
//!
//! * **PDP** — 64 power bins of 2 ns (the resolution of a ~500 Msps
//!   correlator), aligned to the first arriving tap.
//! * **CSI estimate** — `|FFT(PDP)|`: the paper cannot measure CSI on a
//!   single-carrier PHY and instead FFTs the PDP into the frequency
//!   domain (§6.1, "FFT PDP Similarity", Fig. 7).
//! * **Similarity** — Pearson correlation between two instances of a
//!   metric, following [55].

use libra_channel::BeamPairResponse;
use libra_util::fft::magnitude_spectrum;
use libra_util::stats::pearson;
use serde::{Deserialize, Serialize};

/// Number of PDP bins logged per measurement.
pub const PDP_BINS: usize = 64;

/// PDP bin width, nanoseconds.
pub const PDP_BIN_NS: f64 = 2.0;

/// Relative noise floor of the PDP measurement: each bin carries at least
/// this fraction of the strongest tap's power (correlator leakage).
const PDP_FLOOR_REL: f64 = 1e-4;

/// A discretized power delay profile (linear power per bin, mW).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerDelayProfile {
    bins: Vec<f64>,
}

impl PowerDelayProfile {
    /// Builds the PDP a receiver would log for the given channel
    /// observation. Taps are binned by delay relative to the first
    /// arrival; taps beyond the 128 ns window are folded into the last
    /// bin (they are far too weak to matter by then).
    pub fn from_response(resp: &BeamPairResponse) -> Self {
        let mut bins = vec![0.0f64; PDP_BINS];
        if let Some(first) = resp.taps.first() {
            let t0 = first.delay_ns;
            let mut peak_mw = 0.0f64;
            for tap in &resp.taps {
                let mw = 10f64.powf(tap.power_dbm / 10.0);
                peak_mw = peak_mw.max(mw);
                let bin = (((tap.delay_ns - t0) / PDP_BIN_NS) as usize).min(PDP_BINS - 1);
                bins[bin] += mw;
            }
            // Correlator leakage floor.
            let floor = peak_mw * PDP_FLOOR_REL;
            for b in &mut bins {
                *b += floor;
            }
        }
        Self { bins }
    }

    /// Builds a PDP from raw bin powers (tests, deserialization).
    pub fn from_bins(bins: Vec<f64>) -> Self {
        assert_eq!(bins.len(), PDP_BINS, "PDP must have {PDP_BINS} bins");
        Self { bins }
    }

    /// Linear bin powers, mW.
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// The CSI estimate: magnitude of the FFT of the (amplitude) profile.
    ///
    /// Only the first half of the spectrum is kept (the input is real, so
    /// the spectrum is conjugate-symmetric and the second half carries no
    /// information).
    pub fn csi_estimate(&self) -> Vec<f64> {
        let amplitudes: Vec<f64> = self.bins.iter().map(|&p| p.max(0.0).sqrt()).collect();
        let spec = magnitude_spectrum(&amplitudes);
        spec[..PDP_BINS / 2].to_vec()
    }

    /// Pearson similarity between two PDPs (paper Fig. 6).
    pub fn similarity(&self, other: &PowerDelayProfile) -> f64 {
        pearson(&self.bins, &other.bins)
    }

    /// Pearson similarity between the CSI estimates of two PDPs
    /// (paper Fig. 7).
    pub fn csi_similarity(&self, other: &PowerDelayProfile) -> f64 {
        pearson(&self.csi_estimate(), &other.csi_estimate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libra_arrays::BeamPattern;
    use libra_channel::{Material, Point, Pose, Room, Scene};

    fn scene(dist: f64) -> Scene {
        let room = Room::rectangular("t", 30.0, 3.0, [Material::Drywall; 4]);
        Scene::new(
            room,
            Pose::new(Point::new(1.0, 1.5), 0.0),
            Pose::new(Point::new(1.0 + dist, 1.5), 180.0),
        )
    }

    fn quasi_resp(dist: f64) -> BeamPairResponse {
        scene(dist).response(&BeamPattern::quasi_omni(), &BeamPattern::quasi_omni())
    }

    #[test]
    fn pdp_has_64_bins_and_energy() {
        let pdp = PowerDelayProfile::from_response(&quasi_resp(10.0));
        assert_eq!(pdp.bins().len(), PDP_BINS);
        assert!(pdp.bins().iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn first_bin_holds_los() {
        let pdp = PowerDelayProfile::from_response(&quasi_resp(10.0));
        let max_bin = pdp
            .bins()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(max_bin, 0, "LOS should be first and strongest");
    }

    #[test]
    fn multipath_spreads_energy_over_bins() {
        let pdp = PowerDelayProfile::from_response(&quasi_resp(10.0));
        let occupied = pdp
            .bins()
            .iter()
            .filter(|&&p| p > pdp.bins()[0] * 1e-3)
            .count();
        assert!(occupied >= 2, "only {occupied} occupied bins");
    }

    #[test]
    fn identical_states_similarity_one() {
        let pdp1 = PowerDelayProfile::from_response(&quasi_resp(10.0));
        let pdp2 = PowerDelayProfile::from_response(&quasi_resp(10.0));
        assert!((pdp1.similarity(&pdp2) - 1.0).abs() < 1e-9);
        assert!((pdp1.csi_similarity(&pdp2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pdp_similarity_stays_high_across_small_moves() {
        // The paper: 60 GHz channels are sparse, so PDP similarity is
        // high (≥ 0.65 always, ≥ 0.9 in most cases) even across states.
        let a = PowerDelayProfile::from_response(&quasi_resp(10.0));
        let b = PowerDelayProfile::from_response(&quasi_resp(11.0));
        assert!(a.similarity(&b) > 0.65, "got {}", a.similarity(&b));
    }

    #[test]
    fn csi_more_discriminative_than_pdp() {
        // Frequency-domain similarity should vary more than time-domain
        // similarity for a displaced receiver (paper Figs 6–7).
        let a = PowerDelayProfile::from_response(&quasi_resp(10.0));
        let b = PowerDelayProfile::from_response(&quasi_resp(14.0));
        let d_pdp = 1.0 - a.similarity(&b);
        let d_csi = 1.0 - a.csi_similarity(&b);
        assert!(d_csi > d_pdp, "csi delta {d_csi} <= pdp delta {d_pdp}");
    }

    #[test]
    fn empty_response_gives_flat_pdp() {
        let resp = BeamPairResponse {
            taps: vec![],
            signal_power_dbm: f64::NEG_INFINITY,
            thermal_noise_dbm: -74.0,
            interference_dbm: f64::NEG_INFINITY,
            effective_noise_dbm: -74.0,
            snr_db: f64::NEG_INFINITY,
            tof_ns: f64::INFINITY,
        };
        let pdp = PowerDelayProfile::from_response(&resp);
        assert!(pdp.bins().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn csi_estimate_is_half_spectrum() {
        let pdp = PowerDelayProfile::from_response(&quasi_resp(8.0));
        assert_eq!(pdp.csi_estimate().len(), PDP_BINS / 2);
    }

    #[test]
    #[should_panic(expected = "64 bins")]
    fn from_bins_validates_length() {
        PowerDelayProfile::from_bins(vec![0.0; 10]);
    }
}
