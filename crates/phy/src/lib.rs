//! # libra-phy
//!
//! An X60-like single-carrier 60 GHz PHY model: the substrate standing in
//! for the programmable PHY of the X60 testbed (paper §4.1).
//!
//! * [`mcs`] — the 9-MCS X60 table (300 Mbps – 4.75 Gbps) and the 12-MCS
//!   802.11ad table (385 – 4620 Mbps).
//! * [`error_model`] — SNR → codeword-error-rate curves with an
//!   ISI/delay-spread penalty that reproduces the weak SNR↔MCS coupling
//!   the authors measured on real hardware.
//! * [`framing`] — X60 TDMA framing (10 ms frames, 100 × 100 µs slots,
//!   92 codewords per slot) and 802.11ad frame-aggregation parameters.
//! * [`metrics`] — power delay profiles, FFT-based CSI estimates, and
//!   Pearson similarity (the multipath metrics of §6.1).
//! * [`trace`] — per-frame PHY logs with realistic measurement jitter
//!   (the raw material of the dataset and the trace-based simulation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error_model;
pub mod framing;
pub mod mcs;
pub mod metrics;
pub mod trace;

pub use error_model::ErrorModel;
pub use framing::FrameConfig;
pub use mcs::{McsEntry, McsIndex, McsTable};
pub use metrics::{PowerDelayProfile, PDP_BINS, PDP_BIN_NS};
pub use trace::{generate_trace, FrameLog, TraceJitter};
