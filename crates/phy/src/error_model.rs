//! SNR → codeword error rate model with an ISI penalty.
//!
//! The core abstraction: for a given MCS and channel observation, what
//! fraction of codewords decodes? We use a logistic ramp in SNR around
//! the MCS's midpoint — the standard shape of block error curves — with
//! one crucial addition: an **inter-symbol-interference penalty** that
//! grows with the channel's RMS delay spread and with the MCS order.
//!
//! The penalty is what reproduces the paper's observation that *"MCS is
//! only weakly correlated with SNR in 60 GHz WLANs"* (§2, citing the
//! authors' earlier measurement studies [49, 50]): two beam pairs with
//! identical SNR but different multipath structure support different
//! MCSs, because a single-carrier PHY with short equalization suffers
//! from delayed taps at high symbol rates. Without this term the
//! classification problem of §6 collapses (SNR would fully determine the
//! label); `libra-bench` ships an ablation (`ablation_isi`) quantifying
//! exactly that.

use crate::mcs::{McsEntry, McsIndex, McsTable};
use libra_channel::BeamPairResponse;
use serde::{Deserialize, Serialize};

/// Parameters of the error model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorModel {
    /// Logistic steepness, dB⁻¹: how fast CER falls around the midpoint.
    /// Measured block-error curves drop from 90 % to 10 % over ~2 dB,
    /// corresponding to `k ≈ 2.2`.
    pub steepness_per_db: f64,
    /// ISI sensitivity of the lowest MCS, dB of effective-SNR loss per
    /// ns of RMS delay spread.
    pub isi_base_db_per_ns: f64,
    /// Additional ISI sensitivity per MCS step, dB per ns.
    pub isi_step_db_per_ns: f64,
}

impl Default for ErrorModel {
    fn default() -> Self {
        Self {
            steepness_per_db: 2.2,
            isi_base_db_per_ns: 0.05,
            isi_step_db_per_ns: 0.09,
        }
    }
}

impl ErrorModel {
    /// An error model with the ISI term disabled (ablation baseline).
    pub fn without_isi() -> Self {
        Self {
            isi_base_db_per_ns: 0.0,
            isi_step_db_per_ns: 0.0,
            ..Self::default()
        }
    }

    /// Effective SNR after the ISI penalty for `mcs`, dB.
    pub fn effective_snr_db(&self, snr_db: f64, rms_delay_spread_ns: f64, mcs: McsIndex) -> f64 {
        let sens = self.isi_base_db_per_ns + self.isi_step_db_per_ns * mcs as f64;
        snr_db - sens * rms_delay_spread_ns
    }

    /// Codeword error rate for `entry` at the given effective conditions.
    pub fn cer(&self, entry: &McsEntry, snr_db: f64, rms_delay_spread_ns: f64) -> f64 {
        let eff = self.effective_snr_db(snr_db, rms_delay_spread_ns, entry.index);
        logistic(self.steepness_per_db * (entry.snr_midpoint_db - eff))
    }

    /// Expected codeword delivery ratio (`1 − CER`).
    pub fn cdr(&self, entry: &McsEntry, snr_db: f64, rms_delay_spread_ns: f64) -> f64 {
        1.0 - self.cer(entry, snr_db, rms_delay_spread_ns)
    }

    /// Expected MAC throughput of `entry` under the given conditions,
    /// Mbps (`rate × CDR`).
    pub fn expected_throughput_mbps(
        &self,
        entry: &McsEntry,
        snr_db: f64,
        rms_delay_spread_ns: f64,
    ) -> f64 {
        entry.rate_mbps * self.cdr(entry, snr_db, rms_delay_spread_ns)
    }

    /// Expected throughput of `mcs` over an observed beam-pair channel.
    pub fn throughput_for_response(
        &self,
        table: &McsTable,
        mcs: McsIndex,
        resp: &BeamPairResponse,
    ) -> f64 {
        self.expected_throughput_mbps(table.get(mcs), resp.snr_db, resp.rms_delay_spread_ns())
    }

    /// The MCS with the highest expected throughput over `resp`
    /// (exhaustive scan — 9 entries).
    pub fn best_mcs(&self, table: &McsTable, resp: &BeamPairResponse) -> McsIndex {
        let spread = resp.rms_delay_spread_ns();
        table
            .iter()
            .max_by(|a, b| {
                let ta = self.expected_throughput_mbps(a, resp.snr_db, spread);
                let tb = self.expected_throughput_mbps(b, resp.snr_db, spread);
                ta.partial_cmp(&tb).expect("finite throughputs")
            })
            .map(|e| e.index)
            .expect("non-empty table")
    }
}

#[inline]
fn logistic(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ErrorModel {
        ErrorModel::default()
    }

    #[test]
    fn cer_half_at_midpoint() {
        let t = McsTable::x60();
        let m = model();
        for e in t.iter() {
            let cer = m.cer(e, e.snr_midpoint_db, 0.0);
            assert!((cer - 0.5).abs() < 1e-9, "mcs {} cer {}", e.index, cer);
        }
    }

    #[test]
    fn cer_monotone_in_snr() {
        let t = McsTable::x60();
        let m = model();
        let e = t.get(4);
        let mut prev = 1.0;
        for snr10 in -50..300 {
            let cer = m.cer(e, snr10 as f64 / 10.0, 0.0);
            assert!(cer <= prev + 1e-12);
            prev = cer;
        }
    }

    #[test]
    fn high_snr_delivers_everything() {
        let t = McsTable::x60();
        let m = model();
        assert!(m.cdr(t.get(8), 35.0, 0.0) > 0.999);
        assert!(m.cdr(t.get(0), 35.0, 0.0) > 0.999);
    }

    #[test]
    fn low_snr_delivers_nothing() {
        let t = McsTable::x60();
        let m = model();
        assert!(m.cdr(t.get(8), 5.0, 0.0) < 0.001);
    }

    #[test]
    fn isi_penalty_grows_with_mcs() {
        let m = model();
        let snr = 25.0;
        let spread = 6.0;
        let eff_low = m.effective_snr_db(snr, spread, 0);
        let eff_high = m.effective_snr_db(snr, spread, 8);
        assert!(eff_low > eff_high);
        assert!((eff_low - (snr - 0.05 * 6.0)).abs() < 1e-9);
    }

    #[test]
    fn delay_spread_can_flip_best_mcs() {
        // Same SNR, different multipath: the best MCS must differ —
        // this is the "MCS weakly correlated with SNR" property.
        let t = McsTable::x60();
        let m = model();
        let snr = 22.0;
        let best_clean = t
            .iter()
            .max_by(|a, b| {
                m.expected_throughput_mbps(a, snr, 0.0)
                    .partial_cmp(&m.expected_throughput_mbps(b, snr, 0.0))
                    .unwrap()
            })
            .unwrap()
            .index;
        let best_dispersive = t
            .iter()
            .max_by(|a, b| {
                m.expected_throughput_mbps(a, snr, 8.0)
                    .partial_cmp(&m.expected_throughput_mbps(b, snr, 8.0))
                    .unwrap()
            })
            .unwrap()
            .index;
        assert!(
            best_dispersive < best_clean,
            "{best_dispersive} !< {best_clean}"
        );
    }

    #[test]
    fn without_isi_ignores_spread() {
        let t = McsTable::x60();
        let m = ErrorModel::without_isi();
        let e = t.get(6);
        assert_eq!(m.cer(e, 20.0, 0.0), m.cer(e, 20.0, 50.0));
    }

    #[test]
    fn best_mcs_tracks_snr() {
        let t = McsTable::x60();
        let m = model();
        let resp_at = |snr: f64| BeamPairResponse {
            taps: vec![],
            signal_power_dbm: snr - 74.0,
            thermal_noise_dbm: -74.0,
            interference_dbm: f64::NEG_INFINITY,
            effective_noise_dbm: -74.0,
            snr_db: snr,
            tof_ns: 10.0,
        };
        assert_eq!(m.best_mcs(&t, &resp_at(30.0)), 8);
        let mid = m.best_mcs(&t, &resp_at(12.0));
        assert!((3..=5).contains(&mid), "mid-SNR best MCS {mid}");
        assert_eq!(m.best_mcs(&t, &resp_at(2.0)), 0);
    }

    #[test]
    fn throughput_peaks_at_interior_mcs_for_mid_snr() {
        let t = McsTable::x60();
        let m = model();
        let tputs: Vec<f64> = t
            .iter()
            .map(|e| m.expected_throughput_mbps(e, 12.0, 0.0))
            .collect();
        let argmax = tputs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(argmax > 0 && argmax < 8);
    }
}
