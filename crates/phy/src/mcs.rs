//! Modulation-and-coding-scheme tables.
//!
//! Two tables are provided:
//!
//! * [`McsTable::x60`] — the 9 single-carrier MCSs of the X60 PHY
//!   reference implementation, spanning 300 Mbps – 4.75 Gbps (paper §4.1).
//!   This is the table used for dataset generation and the LiBRA
//!   evaluation.
//! * [`McsTable::ieee80211ad`] — the 12 SC MCSs of 802.11ad (MCS 1–12,
//!   385 – 4620 Mbps; MCS 0 at 27.5 Mbps is control-only and excluded,
//!   as in the paper's §2). Used by the COTS device emulation and the
//!   scaled VR study.
//!
//! Each entry carries the PHY data rate, the SNR at which its codeword
//! error rate is 50 % (the logistic midpoint of the error model), and the
//! codeword length (X60 codewords are 180–1080 bytes depending on MCS;
//! §6.1 notes this is comparable to an MPDU).

use serde::{Deserialize, Serialize};

/// Index of an MCS within its table (0-based).
pub type McsIndex = usize;

/// One modulation-and-coding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McsEntry {
    /// Index within the table.
    pub index: McsIndex,
    /// PHY data rate, Mbps.
    pub rate_mbps: f64,
    /// SNR at which the codeword error rate is 50 %, dB.
    pub snr_midpoint_db: f64,
    /// Codeword payload length, bytes.
    pub codeword_bytes: usize,
}

/// An ordered set of MCSs (ascending rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McsTable {
    name: String,
    entries: Vec<McsEntry>,
}

impl McsTable {
    /// Builds a table from entries; they must be in ascending-rate order.
    pub fn new(name: &str, entries: Vec<McsEntry>) -> Self {
        assert!(!entries.is_empty(), "empty MCS table");
        assert!(
            entries.windows(2).all(|w| w[0].rate_mbps < w[1].rate_mbps),
            "MCS rates must be strictly increasing"
        );
        assert!(
            entries.iter().enumerate().all(|(i, e)| e.index == i),
            "MCS indices must be 0..n"
        );
        Self {
            name: name.to_string(),
            entries,
        }
    }

    /// The 9-MCS X60 single-carrier table (300 Mbps – 4.75 Gbps).
    ///
    /// Intermediate rates interpolate the BPSK→16QAM, rate-1/2→7/8
    /// progression of the 802.11ad SC PHY scaled to X60's symbol rate;
    /// SNR midpoints follow the usual ~2–2.5 dB per-step ladder for SC
    /// modulation at these spectral efficiencies.
    pub fn x60() -> Self {
        let rates = [
            300.0, 850.0, 1400.0, 1950.0, 2500.0, 3050.0, 3600.0, 4200.0, 4750.0,
        ];
        let midpoints = [1.0, 3.5, 6.0, 8.5, 11.0, 13.5, 16.0, 18.5, 21.0];
        let cw_bytes = [180, 270, 360, 450, 540, 660, 780, 920, 1080];
        let entries = (0..9)
            .map(|i| McsEntry {
                index: i,
                rate_mbps: rates[i],
                snr_midpoint_db: midpoints[i],
                codeword_bytes: cw_bytes[i],
            })
            .collect();
        Self::new("x60-sc", entries)
    }

    /// The 12 data MCSs of the 802.11ad SC PHY (MCS 1–12 renumbered to
    /// indices 0–11), 385 – 4620 Mbps.
    pub fn ieee80211ad() -> Self {
        let rates = [
            385.0, 770.0, 962.5, 1155.0, 1251.25, 1540.0, 1925.0, 2310.0, 2502.5, 3080.0, 3850.0,
            4620.0,
        ];
        let midpoints = [
            1.0, 3.0, 4.5, 5.5, 6.5, 8.0, 10.0, 12.0, 13.0, 15.0, 18.0, 21.0,
        ];
        let entries = (0..12)
            .map(|i| McsEntry {
                index: i,
                rate_mbps: rates[i],
                snr_midpoint_db: midpoints[i],
                codeword_bytes: 672,
            })
            .collect();
        Self::new("802.11ad-sc", entries)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of MCSs (`N_MCS` in the worst-case-delay formula of §5.2).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entry accessor.
    ///
    /// # Panics
    /// Panics when `idx` is out of range.
    pub fn get(&self, idx: McsIndex) -> &McsEntry {
        &self.entries[idx]
    }

    /// Highest MCS index.
    pub fn max_index(&self) -> McsIndex {
        self.entries.len() - 1
    }

    /// PHY data rate of the highest MCS, Mbps (`Th_max` in the utility
    /// metric, Eqn. (1) of §5.2).
    pub fn max_rate_mbps(&self) -> f64 {
        self.entries.last().expect("non-empty").rate_mbps
    }

    /// Iterator over entries in ascending-rate order.
    pub fn iter(&self) -> impl Iterator<Item = &McsEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x60_table_matches_paper_envelope() {
        let t = McsTable::x60();
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(0).rate_mbps, 300.0);
        assert_eq!(t.get(8).rate_mbps, 4750.0);
        assert_eq!(t.max_rate_mbps(), 4750.0);
    }

    #[test]
    fn ad_table_matches_standard_envelope() {
        let t = McsTable::ieee80211ad();
        assert_eq!(t.len(), 12);
        assert_eq!(t.get(0).rate_mbps, 385.0);
        assert_eq!(t.get(11).rate_mbps, 4620.0);
    }

    #[test]
    fn rates_and_midpoints_increase() {
        for t in [McsTable::x60(), McsTable::ieee80211ad()] {
            let rates: Vec<f64> = t.iter().map(|e| e.rate_mbps).collect();
            assert!(rates.windows(2).all(|w| w[0] < w[1]));
            let mids: Vec<f64> = t.iter().map(|e| e.snr_midpoint_db).collect();
            assert!(mids.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn x60_codeword_sizes_in_paper_range() {
        let t = McsTable::x60();
        for e in t.iter() {
            assert!((180..=1080).contains(&e.codeword_bytes));
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_rates() {
        let e = |i: usize, r: f64| McsEntry {
            index: i,
            rate_mbps: r,
            snr_midpoint_db: 0.0,
            codeword_bytes: 100,
        };
        McsTable::new("bad", vec![e(0, 500.0), e(1, 400.0)]);
    }
}
