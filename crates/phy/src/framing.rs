//! TDMA framing of the X60 MAC and the 802.11ad frame-aggregation
//! parameters used by the evaluation.
//!
//! X60 transmits 10 ms frames of 100 slots × 100 µs; a slot carries 92
//! codewords, each with its own CRC (paper §4.1). The structure of an X60
//! frame therefore resembles an 802.11 AMPDU — many individually-checked
//! units per transmission — which is why the paper treats the X60
//! codeword delivery ratio (CDR) as the analogue of WiFi's sub-frame
//! error rate (§6.1, "Error/Delivery Rate").
//!
//! For the LiBRA evaluation the *frame aggregation time* (FAT) is the
//! knob: each RA probe costs one aggregated frame, so the RA overhead is
//! `MCSs tried × FAT` (§8.1, with FAT ∈ {2 ms, 10 ms}).

use serde::{Deserialize, Serialize};

/// Framing parameters of the simulated MAC/PHY.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameConfig {
    /// Duration of one (aggregated) frame, microseconds. Equals the FAT
    /// of the evaluation: 10 000 µs for X60, 2 000 µs max in 802.11ad.
    pub frame_duration_us: f64,
    /// Number of TDMA slots per frame (X60: 100).
    pub slots_per_frame: usize,
    /// Codewords per slot (X60: 92).
    pub codewords_per_slot: usize,
}

impl FrameConfig {
    /// X60 framing: 10 ms frames, 100 slots, 92 codewords per slot.
    pub fn x60() -> Self {
        Self {
            frame_duration_us: 10_000.0,
            slots_per_frame: 100,
            codewords_per_slot: 92,
        }
    }

    /// 802.11ad framing with the maximum 2 ms AMPDU duration. The slot
    /// subdivision is kept proportional so CDR statistics stay
    /// comparable.
    pub fn ieee80211ad() -> Self {
        Self {
            frame_duration_us: 2_000.0,
            slots_per_frame: 20,
            codewords_per_slot: 92,
        }
    }

    /// A frame config with a custom frame duration (FAT sweep), keeping
    /// X60's slot granularity of 100 µs.
    pub fn with_fat_ms(fat_ms: f64) -> Self {
        assert!(fat_ms > 0.0);
        let slots = ((fat_ms * 1000.0 / 100.0).round() as usize).max(1);
        Self {
            frame_duration_us: fat_ms * 1000.0,
            slots_per_frame: slots,
            codewords_per_slot: 92,
        }
    }

    /// Frame duration in milliseconds (`d_fr` of §5.2).
    pub fn frame_duration_ms(&self) -> f64 {
        self.frame_duration_us / 1000.0
    }

    /// Codewords per frame.
    pub fn codewords_per_frame(&self) -> usize {
        self.slots_per_frame * self.codewords_per_slot
    }

    /// Frames per second.
    pub fn frames_per_second(&self) -> f64 {
        1e6 / self.frame_duration_us
    }

    /// Payload bytes delivered by one frame at `rate_mbps` with the given
    /// delivery ratio.
    pub fn bytes_per_frame(&self, rate_mbps: f64, cdr: f64) -> f64 {
        rate_mbps * 1e6 * (self.frame_duration_us / 1e6) * cdr / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x60_frame_structure() {
        let f = FrameConfig::x60();
        assert_eq!(f.codewords_per_frame(), 9200);
        assert_eq!(f.frame_duration_ms(), 10.0);
        assert_eq!(f.frames_per_second(), 100.0);
    }

    #[test]
    fn ad_frame_is_2ms() {
        let f = FrameConfig::ieee80211ad();
        assert_eq!(f.frame_duration_ms(), 2.0);
    }

    #[test]
    fn fat_constructor_rounds_slots() {
        let f = FrameConfig::with_fat_ms(2.0);
        assert_eq!(f.slots_per_frame, 20);
        assert_eq!(f.frame_duration_ms(), 2.0);
    }

    #[test]
    fn bytes_per_frame_full_rate() {
        let f = FrameConfig::x60();
        // 4750 Mbps × 10 ms / 8 = 5.9375 MB
        let b = f.bytes_per_frame(4750.0, 1.0);
        assert!((b - 5_937_500.0).abs() < 1.0);
    }

    #[test]
    fn bytes_scale_with_cdr() {
        let f = FrameConfig::x60();
        assert_eq!(
            f.bytes_per_frame(1000.0, 0.5),
            f.bytes_per_frame(500.0, 1.0)
        );
        assert_eq!(f.bytes_per_frame(1000.0, 0.0), 0.0);
    }
}
