//! Umbrella crate of the LiBRA reproduction workspace.
//!
//! This crate exists to host the runnable `examples/` and the
//! cross-crate `tests/`; the actual functionality lives in the member
//! crates re-exported below. See the repository README for the tour.

#![forbid(unsafe_code)]

pub use libra;
pub use libra_arrays;
pub use libra_channel;
pub use libra_dataset;
pub use libra_mac;
pub use libra_ml;
pub use libra_phy;
pub use libra_util;
