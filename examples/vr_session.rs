//! VR over 60 GHz (paper §8.4): stream a synthetic 8K@60FPS session over
//! a mobility timeline with each adaptation policy and compare the
//! stalls the viewer suffers.
//!
//! ```text
//! cargo run --release --example vr_session [-- <ba_overhead_ms>]
//! ```

use libra::prelude::*;
use libra::{PolicyKind, SimConfig, VrTrace};
use libra_dataset::Instruments;
use libra_phy::McsTable;
use libra_util::rng::rng_from_seed;

fn main() {
    let ba = match std::env::args().nth(1).as_deref() {
        Some("5") => BaOverheadPreset::QuasiOmni3,
        Some("150") => BaOverheadPreset::Directional9,
        Some("250") => BaOverheadPreset::Directional7,
        _ => BaOverheadPreset::QuasiOmni30,
    };
    println!(
        "BA overhead: {} — pass 5 / 150 / 250 to change it",
        ba.label()
    );

    let table = McsTable::x60();
    let params = GroundTruthParams::default();
    let cfg = CampaignConfig::default();
    println!("training LiBRA...");
    let ds = generate(&main_campaign_plan(), &cfg);
    let mut rng = rng_from_seed(11);
    let clf = LibraClassifier::train(&ds.to_ml_3class(&table, &params), &mut rng);

    // A ~35 s mobility timeline and a 30 s 8K trace.
    let tl_cfg = TimelineConfig {
        n_segments: 16,
        min_segment_ms: 2000.0,
        max_segment_ms: 3000.0,
        tx_power_dbm: 6.0,
        ..Default::default()
    };
    let tl = generate_timeline(ScenarioType::Mobility, &tl_cfg, &mut rng);
    let trace = VrTrace::synthetic_8k(30.0, 1.2, &mut rng);
    println!(
        "timeline: {:.1} s over {} segments; VR demand {:.2} Gbps mean",
        tl.duration_ms() / 1000.0,
        tl.segments.len(),
        trace.mean_gbps()
    );

    let mut sim = SimConfig::new(ProtocolParams::new(ba, 2.0));
    sim.tput_scale = COTS_TPUT_SCALE; // scale X60 rates to COTS levels
    sim.min_tput_mbps *= COTS_TPUT_SCALE;
    let instruments = Instruments::default();

    println!(
        "\n{:14} {:>8} {:>18} {:>14}",
        "policy", "stalls", "total stall (ms)", "mean (ms)"
    );
    for policy in [
        PolicyKind::Libra,
        PolicyKind::BaFirst,
        PolicyKind::RaFirst,
        PolicyKind::OracleData,
        PolicyKind::OracleDelay,
    ] {
        let r = run_timeline(&tl, policy, Some(&clf), &sim, &instruments);
        let rep = play(&trace, &r.spans);
        println!(
            "{:14} {:>8} {:>18.1} {:>14.1}",
            policy.label(),
            rep.n_stalls,
            rep.total_stall_ms,
            rep.mean_stall_ms
        );
    }
}
