//! COTS sector flapping (paper §3, Fig. 1): watch an emulated ROG phone
//! and Talon AP keep re-triggering beam training on a perfectly static
//! link, then see what disabling BA does to throughput.
//!
//! Optional fault injection: pass an ACK-loss probability to stress the
//! heuristic further (`--ack-drop 0.05`), in the spirit of the fault
//! injection hooks in smoltcp's examples.
//!
//! ```text
//! cargo run --release --example cots_flapping [-- --ack-drop 0.05]
//! ```

use libra_mac::cots::{best_fixed_sector_run, run_cots, CotsConfig, CotsScenario, DeviceProfile};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ack_drop = args
        .iter()
        .position(|a| a == "--ack-drop")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0);

    let scenario = CotsScenario::Static { distance_m: 9.1 };
    let duration_s = 30.0;

    for (name, mut profile) in [
        ("ROG phone", DeviceProfile::rog_phone()),
        ("Talon AP", DeviceProfile::talon_ap()),
    ] {
        // Fault injection: extra random ACK losses look like extra fades.
        profile.fade_prob += ack_drop;
        let cfg = CotsConfig {
            profile,
            ba_enabled: true,
            fixed_sector: 0,
            duration_s,
            seed: 0xC07,
        };
        let log = run_cots(&scenario, &cfg);
        println!(
            "{name}: {} BA triggers in {duration_s} s, {} distinct sectors, {:.0} Mbps",
            log.ba_trigger_count, log.distinct_sectors, log.mean_tput_mbps
        );
        print!("  sector timeline (t ms → sector): ");
        for e in log.sector_timeline.iter().take(12) {
            match e.sector {
                Some(s) => print!("{:.0}→{} ", e.t_ms, s),
                None => print!("{:.0}→255 ", e.t_ms),
            }
        }
        if log.sector_timeline.len() > 12 {
            print!("… ({} more)", log.sector_timeline.len() - 12);
        }
        println!();
    }

    println!("\nlocking the best sector by hand (BA disabled):");
    let (sector, fixed) =
        best_fixed_sector_run(&scenario, &DeviceProfile::talon_ap(), duration_s, 0xC07);
    println!(
        "  best fixed sector {sector}: {:.0} Mbps",
        fixed.mean_tput_mbps
    );

    let cfg = CotsConfig {
        profile: DeviceProfile::talon_ap(),
        ba_enabled: true,
        fixed_sector: 0,
        duration_s,
        seed: 0xC07,
    };
    let with_ba = run_cots(&scenario, &cfg);
    let gain = (fixed.mean_tput_mbps - with_ba.mean_tput_mbps) / with_ba.mean_tput_mbps * 100.0;
    println!(
        "  with BA enabled: {:.0} Mbps → disabling BA is {gain:+.0}% (paper Fig. 1c: +26%)",
        with_ba.mean_tput_mbps
    );
}
