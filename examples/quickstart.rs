//! Quickstart: the whole LiBRA pipeline in one sitting.
//!
//! 1. Emulate the X60 measurement campaign (paper §4–5) to build the
//!    training dataset.
//! 2. Train LiBRA's 3-class (BA / RA / NA) random forest (§6–7).
//! 3. Replay a link break from a held-out building and compare LiBRA
//!    against the two COTS heuristics and the oracles (§8).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use libra::prelude::*;
use libra::sim::run_policy_segment;
use libra::{LinkState, PolicyKind, SegmentData, SimConfig};
use libra_phy::McsTable;
use libra_util::rng::rng_from_seed;

fn main() {
    let table = McsTable::x60();
    let params = GroundTruthParams::default();

    println!("generating the training dataset (emulated measurement campaign)...");
    let cfg = CampaignConfig::default();
    let train = generate(&main_campaign_plan(), &cfg);
    let summary = train.summary(&table, &params);
    for row in &summary {
        println!(
            "  {:14} {:4} entries  (BA {:4} / RA {:4})",
            row.name, row.total, row.ba, row.ra
        );
    }

    println!("\ntraining the 3-class classifier (random forest)...");
    let mut rng = rng_from_seed(7);
    let clf = LibraClassifier::train(&train.to_ml_3class(&table, &params), &mut rng);
    println!("  {} trees", clf.engine().n_trees());

    println!("\nreplaying a link break from a held-out building:");
    let test = generate(&testing_campaign_plan(), &cfg);
    let entry = test
        .entries
        .iter()
        .find(|e| e.impairment == Impairment::Blockage)
        .expect("testing dataset has blockage entries");
    println!(
        "  entry: {} / {} (SNR drop {:.1} dB, CDR {:.2}, initial MCS {})",
        entry.env.name(),
        entry.position_key,
        entry.features.snr_diff_db,
        entry.features.cdr,
        entry.features.initial_mcs,
    );

    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
    let seg = SegmentData::from_entry(entry, 1000.0);
    let state = LinkState::at_mcs(entry.initial.best_mcs());
    println!(
        "\n  {:14} {:>10} {:>14}",
        "algorithm", "MB in 1 s", "recovery (ms)"
    );
    for policy in [
        PolicyKind::Libra,
        PolicyKind::BaFirst,
        PolicyKind::RaFirst,
        PolicyKind::OracleData,
        PolicyKind::OracleDelay,
    ] {
        let out = run_policy_segment(&seg, policy, Some(&clf), state, &sim);
        println!(
            "  {:14} {:>10.1} {:>14}",
            policy.label(),
            out.bytes / 1e6,
            out.recovery_delay_ms
                .map_or("-".to_string(), |d| format!("{d:.1}")),
        );
    }
}
