//! Train and inspect LiBRA's classifiers: runs the paper's §6.2 model
//! comparison (DT / RF / SVM / DNN, 5-fold stratified CV, cross-building
//! generalization), prints the Gini importances of Table 3, and shows a
//! few live classifications.
//!
//! ```text
//! cargo run --release --example train_classifier
//! ```

use libra::{DecidePolicy, LibraClassifier};
use libra_dataset::{
    generate, main_campaign_plan, testing_campaign_plan, Action3, CampaignConfig, Features,
    GroundTruthParams, FEATURE_NAMES,
};
use libra_ml::{cross_validate, train_test_eval, ModelKind};
use libra_phy::McsTable;
use libra_util::rng::rng_from_seed;

fn main() {
    let table = McsTable::x60();
    let params = GroundTruthParams::default();
    let cfg = CampaignConfig::default();

    println!("generating datasets...");
    let main_ds = generate(&main_campaign_plan(), &cfg);
    let test_ds = generate(&testing_campaign_plan(), &cfg);
    let train = main_ds.to_ml(&table, &params);
    let held = test_ds.to_ml(&table, &params);

    println!("\n5-fold stratified CV (2 repeats) and cross-building accuracy:");
    for kind in ModelKind::ALL {
        let cv = cross_validate(kind, &train, 5, 2, 1);
        let (acc, f1) = train_test_eval(kind, &train, &held, 2);
        println!(
            "  {:4}  cv acc {:.3} / f1 {:.3}   cross-building acc {:.3} / f1 {:.3}",
            kind.name(),
            cv.accuracy,
            cv.weighted_f1,
            acc,
            f1
        );
    }

    println!("\ntraining LiBRA's 3-class forest and reading its importances:");
    let mut rng = rng_from_seed(3);
    let clf = LibraClassifier::train(&main_ds.to_ml_3class(&table, &params), &mut rng);
    for (name, imp) in FEATURE_NAMES.iter().zip(clf.engine().feature_importances()) {
        println!("  {name:12} {imp:.3}");
    }

    println!("\nlive classifications:");
    let cases = [
        (
            "big SNR drop after rotation",
            Features {
                snr_diff_db: 18.0,
                tof_diff_ns: 0.0,
                noise_diff_db: 0.3,
                pdp_similarity: 0.85,
                csi_similarity: 0.6,
                cdr: 0.0,
                initial_mcs: 5,
            },
        ),
        (
            "mild drop from backward motion",
            Features {
                snr_diff_db: 2.5,
                tof_diff_ns: -20.0,
                noise_diff_db: 0.1,
                pdp_similarity: 1.0,
                csi_similarity: 0.99,
                cdr: 0.85,
                initial_mcs: 8,
            },
        ),
        (
            "nothing changed",
            Features {
                snr_diff_db: 0.2,
                tof_diff_ns: 0.0,
                noise_diff_db: 0.0,
                pdp_similarity: 1.0,
                csi_similarity: 1.0,
                cdr: 0.99,
                initial_mcs: 7,
            },
        ),
    ];
    for (desc, f) in cases {
        let action = match clf.decide(&f, &DecidePolicy::model_only()).action {
            Action3::Ba => "trigger BA",
            Action3::Ra => "trigger RA",
            Action3::Na => "no adaptation",
        };
        println!("  {desc:32} → {action}");
    }

    println!("\nmissing-ACK fallback rule:");
    for (mcs, ba_ms) in [(3usize, 250.0), (7, 0.5), (7, 250.0)] {
        let action = match clf.fallback(mcs, ba_ms) {
            Action3::Ba => "BA",
            Action3::Ra => "RA",
            Action3::Na => "NA",
        };
        println!("  MCS {mcs}, BA overhead {ba_ms:6.1} ms → {action}");
    }
}
