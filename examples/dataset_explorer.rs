//! Dataset explorer: generate the measurement-campaign dataset, print
//! per-metric class statistics (the content of the paper's Figs 4–9),
//! and export everything as CSV for external plotting.
//!
//! ```text
//! cargo run --release --example dataset_explorer [-- out.csv]
//! ```

use libra_dataset::{
    generate, main_campaign_plan, Action, CampaignConfig, GroundTruthParams, Impairment,
    FEATURE_NAMES,
};
use libra_phy::McsTable;
use libra_util::stats::EmpiricalCdf;

fn main() {
    let out_path = std::env::args().nth(1);

    println!("generating the main dataset...");
    let ds = generate(&main_campaign_plan(), &CampaignConfig::default());
    let table = McsTable::x60();
    let params = GroundTruthParams::default();
    let labels = ds.label(&table, &params);

    // Per-impairment, per-class quartiles of every feature.
    for (fi, name) in FEATURE_NAMES.iter().enumerate() {
        println!("\n=== {name} ===");
        for kind in Impairment::ALL {
            for class in [Action::Ba, Action::Ra] {
                let values: Vec<f64> = ds
                    .entries
                    .iter()
                    .zip(&labels)
                    .filter(|(e, gt)| e.impairment == kind && gt.label == class)
                    .map(|(e, _)| e.features.to_row()[fi])
                    .collect();
                if values.is_empty() {
                    continue;
                }
                let cdf = EmpiricalCdf::new(values.iter().copied());
                println!(
                    "  {:13} {:3} n={:3}  q25={:8.2}  median={:8.2}  q75={:8.2}",
                    kind.name(),
                    if class == Action::Ba { "BA" } else { "RA" },
                    cdf.len(),
                    cdf.quantile(0.25),
                    cdf.quantile(0.50),
                    cdf.quantile(0.75),
                );
            }
        }
    }

    // The paper's headline observations, checked live:
    let disp_ba_big_drop: Vec<f64> = ds
        .entries
        .iter()
        .zip(&labels)
        .filter(|(e, _)| e.impairment == Impairment::Displacement)
        .filter(|(e, _)| e.features.snr_diff_db > 7.0)
        .map(|(_, gt)| if gt.label == Action::Ba { 1.0 } else { 0.0 })
        .collect();
    let frac = libra_util::stats::mean(&disp_ba_big_drop) * 100.0;
    println!(
        "\nSNR drop > 7 dB under displacement → BA in {frac:.0}% of cases \
         (paper §6.1.1: \"when the SNR drop is more than 7 dB, BA always outperforms RA\")"
    );

    if let Some(path) = out_path {
        std::fs::write(&path, ds.to_csv(&table, &params)).expect("write CSV");
        println!("\nwrote the labelled dataset to {path}");
    } else {
        println!("\n(pass a path to export the labelled dataset as CSV)");
    }
}
