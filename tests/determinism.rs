//! Determinism across the full stack: every artifact must be exactly
//! reproducible from its seed — the property that makes the experiment
//! suite trustworthy.

use libra::prelude::*;
use libra::sim::run_policy_segment;
use libra::{DecidePolicy, LinkState, PolicyKind, SegmentData, SimConfig};
use libra_dataset::Instruments;
use libra_phy::McsTable;
use libra_util::rng::rng_from_seed;

#[test]
fn campaign_is_bit_reproducible() {
    let cfg = CampaignConfig::default();
    let plan = testing_campaign_plan();
    let a = generate(&plan, &cfg);
    let b = generate(&plan, &cfg);
    assert_eq!(a.entries.len(), b.entries.len());
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.features, y.features);
        assert_eq!(x.new_old_pair.tput_mbps, y.new_old_pair.tput_mbps);
    }
}

#[test]
fn different_seeds_differ() {
    let plan = testing_campaign_plan();
    let a = generate(&plan, &CampaignConfig::default());
    let b = generate(
        &plan,
        &CampaignConfig {
            seed: 12345,
            ..CampaignConfig::default()
        },
    );
    let differs = a
        .entries
        .iter()
        .zip(&b.entries)
        .any(|(x, y)| x.features.snr_diff_db != y.features.snr_diff_db);
    assert!(differs, "seed change must perturb measurements");
}

#[test]
fn classifier_training_is_reproducible() {
    let ds = generate(&testing_campaign_plan(), &CampaignConfig::default());
    let table = McsTable::x60();
    let params = GroundTruthParams::default();
    let data = ds.to_ml_3class(&table, &params);
    let train = || {
        let mut rng = rng_from_seed(21);
        LibraClassifier::train(&data, &mut rng)
    };
    let a = train();
    let b = train();
    for entry in &ds.entries {
        let policy = DecidePolicy::model_only();
        assert_eq!(
            a.decide(&entry.features, &policy).action,
            b.decide(&entry.features, &policy).action
        );
    }
    assert_eq!(
        a.engine().feature_importances(),
        b.engine().feature_importances()
    );
}

#[test]
fn simulation_is_deterministic() {
    let ds = generate(&testing_campaign_plan(), &CampaignConfig::default());
    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::Directional9, 10.0));
    for entry in ds.entries.iter().take(20) {
        let seg = SegmentData::from_entry(entry, 700.0);
        let state = LinkState::at_mcs(entry.initial.best_mcs());
        let a = run_policy_segment(&seg, PolicyKind::OracleData, None, state, &sim);
        let b = run_policy_segment(&seg, PolicyKind::OracleData, None, state, &sim);
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.recovery_delay_ms, b.recovery_delay_ms);
        assert_eq!(a.spans, b.spans);
    }
}

#[test]
fn timelines_are_reproducible_end_to_end() {
    let make = || {
        let mut rng = rng_from_seed(31);
        generate_timeline(ScenarioType::Mixed, &TimelineConfig::default(), &mut rng)
    };
    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
    let instruments = Instruments::default();
    let a = run_timeline(&make(), PolicyKind::BaFirst, None, &sim, &instruments);
    let b = run_timeline(&make(), PolicyKind::BaFirst, None, &sim, &instruments);
    assert_eq!(a.bytes, b.bytes);
    assert_eq!(a.recovery_delays_ms, b.recovery_delays_ms);
}

#[test]
fn vr_playback_is_deterministic() {
    let mut rng = rng_from_seed(41);
    let trace = VrTrace::synthetic_8k(10.0, 1.2, &mut rng);
    let spans = [libra::RateSpan {
        start_ms: 0.0,
        len_ms: 11_000.0,
        mbps: 1500.0,
    }];
    let a = libra::play(&trace, &spans);
    let b = libra::play(&trace, &spans);
    assert_eq!(a.n_stalls, b.n_stalls);
    assert_eq!(a.total_stall_ms, b.total_stall_ms);
}
