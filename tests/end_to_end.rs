//! Cross-crate integration: the complete paper pipeline, from channel
//! model to policy evaluation, with assertions on the qualitative
//! results the paper reports. Run in release mode (`cargo test --release`)
//! — the campaign emulation is numeric-heavy.

use libra::prelude::*;
use libra::sim::run_policy_segment;
use libra::{LinkState, PolicyKind, SegmentData, SimConfig};
use libra_dataset::Action;
use libra_phy::McsTable;
use libra_util::rng::rng_from_seed;
use std::sync::OnceLock;

fn table() -> McsTable {
    McsTable::x60()
}

fn params() -> GroundTruthParams {
    GroundTruthParams::default()
}

static MAIN: OnceLock<CampaignDataset> = OnceLock::new();
static TEST: OnceLock<CampaignDataset> = OnceLock::new();
static CLF: OnceLock<LibraClassifier> = OnceLock::new();

fn main_ds() -> &'static CampaignDataset {
    MAIN.get_or_init(|| generate(&main_campaign_plan(), &CampaignConfig::default()))
}

fn test_ds() -> &'static CampaignDataset {
    TEST.get_or_init(|| generate(&testing_campaign_plan(), &CampaignConfig::default()))
}

fn clf() -> &'static LibraClassifier {
    CLF.get_or_init(|| {
        let mut rng = rng_from_seed(99);
        LibraClassifier::train(&main_ds().to_ml_3class(&table(), &params()), &mut rng)
    })
}

#[test]
fn dataset_counts_track_table1() {
    let rows = main_ds().summary(&table(), &params());
    let overall = rows.last().unwrap();
    // Paper Table 1: 668 entries, 488 BA / 180 RA (73 % BA), 118 positions.
    assert!(
        (600..=800).contains(&overall.total),
        "total {}",
        overall.total
    );
    let ba_share = overall.ba as f64 / overall.total as f64;
    assert!((0.6..=0.85).contains(&ba_share), "BA share {ba_share}");
    assert!(
        (80..=130).contains(&overall.positions),
        "positions {}",
        overall.positions
    );
}

#[test]
fn impairment_class_preferences_match_paper() {
    let ds = main_ds();
    let labels = ds.label(&table(), &params());
    let share = |kind| {
        let (mut ba, mut n) = (0usize, 0usize);
        for (e, gt) in ds.entries.iter().zip(&labels) {
            if e.impairment == kind {
                n += 1;
                if gt.label == Action::Ba {
                    ba += 1;
                }
            }
        }
        ba as f64 / n as f64
    };
    // Displacement: BA wins in ~79 % of cases.
    assert!(share(Impairment::Displacement) > 0.65);
    // Blockage: BA almost always.
    assert!(share(Impairment::Blockage) > 0.75);
    // Interference: RA is the preferred option (~67 %).
    assert!(share(Impairment::Interference) < 0.5);
}

#[test]
fn random_forest_reaches_paper_accuracy_band() {
    let train = main_ds().to_ml(&table(), &params());
    let cv = libra_ml::cross_validate(libra_ml::ModelKind::RandomForest, &train, 5, 1, 5);
    // Paper: 98 % — accept the mid-90s band for a single repeat.
    assert!(cv.accuracy > 0.93, "RF CV accuracy {}", cv.accuracy);
    assert!(cv.weighted_f1 > 0.93);
}

#[test]
fn cross_building_accuracy_drops_but_stays_useful() {
    let train = main_ds().to_ml(&table(), &params());
    let held = test_ds().to_ml(&table(), &params());
    let (acc, _) = libra_ml::train_test_eval(libra_ml::ModelKind::RandomForest, &train, &held, 6);
    let cv = libra_ml::cross_validate(libra_ml::ModelKind::RandomForest, &train, 5, 1, 6);
    // Paper: 98 % → 88 %. The drop exists but accuracy stays well above
    // the majority-class baseline.
    assert!(
        acc < cv.accuracy,
        "no generalization gap: {acc} vs {}",
        cv.accuracy
    );
    let majority = {
        let counts = held.class_counts();
        *counts.iter().max().unwrap() as f64 / held.len() as f64
    };
    assert!(
        acc > majority + 0.05,
        "cross-building acc {acc} vs majority {majority}"
    );
}

#[test]
fn libra_beats_ra_first_and_tracks_oracle_at_low_overhead() {
    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
    let mut libra_deficit = 0.0;
    let mut ra_deficit = 0.0;
    let mut ba_deficit = 0.0;
    for entry in &test_ds().entries {
        let seg = SegmentData::from_entry(entry, 1000.0);
        let state = LinkState::at_mcs(entry.initial.best_mcs());
        let oracle = run_policy_segment(&seg, PolicyKind::OracleData, None, state, &sim);
        let l = run_policy_segment(&seg, PolicyKind::Libra, Some(clf()), state, &sim);
        let r = run_policy_segment(&seg, PolicyKind::RaFirst, None, state, &sim);
        let b = run_policy_segment(&seg, PolicyKind::BaFirst, None, state, &sim);
        libra_deficit += (oracle.bytes - l.bytes).max(0.0);
        ra_deficit += (oracle.bytes - r.bytes).max(0.0);
        ba_deficit += (oracle.bytes - b.bytes).max(0.0);
    }
    assert!(
        libra_deficit < 0.5 * ra_deficit,
        "LiBRA deficit {libra_deficit:.0} vs RA First {ra_deficit:.0}"
    );
    assert!(
        libra_deficit < 1.3 * ba_deficit,
        "LiBRA should be near BA First at low overhead: {libra_deficit:.0} vs {ba_deficit:.0}"
    );
}

#[test]
fn oracles_dominate_per_entry() {
    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni3, 10.0));
    for entry in test_ds().entries.iter().step_by(7) {
        let seg = SegmentData::from_entry(entry, 400.0);
        let state = LinkState::at_mcs(entry.initial.best_mcs());
        let od = run_policy_segment(&seg, PolicyKind::OracleData, None, state, &sim);
        let odelay = run_policy_segment(&seg, PolicyKind::OracleDelay, None, state, &sim);
        for p in [PolicyKind::RaFirst, PolicyKind::BaFirst] {
            let out = run_policy_segment(&seg, p, None, state, &sim);
            assert!(
                od.bytes + 1.0 >= out.bytes,
                "{} out-delivered Oracle-Data on {}",
                p.label(),
                entry.scenario
            );
            if let (Some(d), Some(o)) = (out.recovery_delay_ms, odelay.recovery_delay_ms) {
                assert!(
                    o <= d + 1e-9,
                    "{} out-recovered Oracle-Delay on {}",
                    p.label(),
                    entry.scenario
                );
            }
        }
    }
}

#[test]
fn ground_truth_action_actually_wins_in_simulation() {
    // Consistency between §5.2 labelling and the §8 simulator: replaying
    // the labelled action must deliver at least as much as the opposite
    // action in the vast majority of entries (α = 1 labels vs a
    // low-overhead simulation).
    let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni30, 2.0));
    let ds = test_ds();
    let labels = ds.label(&table(), &params());
    let mut agree = 0usize;
    let mut total = 0usize;
    for (entry, gt) in ds.entries.iter().zip(&labels) {
        let seg = SegmentData::from_entry(entry, 1000.0);
        let state = LinkState::at_mcs(entry.initial.best_mcs());
        let ra = libra::sim::execute(&seg, libra_dataset::Action3::Ra, state, &sim);
        let ba = libra::sim::execute(&seg, libra_dataset::Action3::Ba, state, &sim);
        let sim_winner = if ra.bytes >= ba.bytes {
            Action::Ra
        } else {
            Action::Ba
        };
        total += 1;
        if sim_winner == gt.label {
            agree += 1;
        }
    }
    let rate = agree as f64 / total as f64;
    assert!(rate > 0.8, "label/simulation agreement only {rate:.2}");
}
