//! Cross-crate property-based tests (proptest): randomized scenes,
//! channels, and simulator inputs must uphold the physical and
//! accounting invariants of the whole stack.

use libra::sim::{execute, ConfigData, LinkState, SegmentData, SimConfig};
use libra_arrays::{BeamPattern, Codebook};
use libra_channel::{Material, Point, Pose, Room, Scene};
use libra_dataset::{Action3, Features};
use libra_mac::{BaOverheadPreset, ProtocolParams};
use proptest::prelude::*;

fn room() -> Room {
    Room::rectangular("prop", 24.0, 10.0, [Material::Drywall; 4])
}

fn scene(tx: (f64, f64), rx: (f64, f64), rx_orient: f64) -> Scene {
    Scene::new(
        room(),
        Pose::new(Point::new(tx.0, tx.1), 0.0),
        Pose::new(Point::new(rx.0, rx.1), rx_orient),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every traced path is at least as long as the straight line, and
    /// the LOS path (when present) is exactly it.
    #[test]
    fn paths_no_shorter_than_los(
        txx in 1.0f64..8.0, txy in 1.0f64..9.0,
        rxx in 9.0f64..23.0, rxy in 1.0f64..9.0,
    ) {
        let s = scene((txx, txy), (rxx, rxy), 180.0);
        let los = Point::new(txx, txy).distance(Point::new(rxx, rxy));
        for p in s.rays() {
            prop_assert!(p.length_m >= los - 1e-9);
            if p.is_los() {
                prop_assert!((p.length_m - los).abs() < 1e-9);
            }
        }
    }

    /// Channel responses stay physical: signal power finite or -inf,
    /// SNR consistent with its components, taps sorted.
    #[test]
    fn response_is_consistent(
        rxx in 9.0f64..23.0, rxy in 1.0f64..9.0,
        orient in -180.0f64..180.0,
        tx_beam in 0usize..25, rx_beam in 0usize..25,
    ) {
        let cb = Codebook::sibeam_25();
        let s = scene((2.0, 5.0), (rxx, rxy), orient);
        let r = s.response(cb.beam(tx_beam), cb.beam(rx_beam));
        prop_assert!(!r.signal_power_dbm.is_nan());
        prop_assert!(
            (r.snr_db - (r.signal_power_dbm - r.effective_noise_dbm)).abs() < 1e-9
        );
        prop_assert!(r.taps.windows(2).all(|w| w[0].delay_ns <= w[1].delay_ns));
        prop_assert!(r.rms_delay_spread_ns() >= 0.0);
    }

    /// Beam gains live between the back-lobe floor and the peak gain
    /// plus the side-lobe/floor power sum margin (~0.5 dB).
    #[test]
    fn gains_bounded(beam in 0usize..25, angle in -180.0f64..180.0) {
        let cb = Codebook::sibeam_25();
        let b = cb.beam(beam);
        let g = b.gain_dbi(angle);
        prop_assert!(g >= -10.0 - 1e-9, "below floor: {g}");
        prop_assert!(g <= b.peak_gain_dbi() + 0.5, "above peak: {g}");
    }

    /// The quasi-omni pattern never deviates far from its nominal gain.
    #[test]
    fn quasi_omni_flat(angle in -720.0f64..720.0) {
        let q = BeamPattern::quasi_omni();
        let g = q.gain_dbi(angle);
        prop_assert!((0.0..=2.0).contains(&g), "quasi-omni {g}");
    }

    /// Executor accounting: bytes never exceed rate × time, recovery
    /// delay (when present) never exceeds the segment duration, spans
    /// reproduce the byte total.
    #[test]
    fn executor_invariants(
        duration in 50.0f64..3000.0,
        start_mcs in 0usize..9,
        action in 0usize..3,
        snr_old in -5.0f64..30.0,
        snr_best in -5.0f64..30.0,
    ) {
        let table = libra_phy::McsTable::x60();
        let model = libra_phy::ErrorModel::default();
        let cfg_data = |snr: f64| {
            let (mut t, mut c) = (Vec::new(), Vec::new());
            for e in table.iter() {
                let cdr = model.cdr(e, snr, 2.0);
                c.push(cdr);
                t.push(e.rate_mbps * cdr);
            }
            ConfigData { tput_mbps: t.into(), cdr: c.into() }
        };
        let seg = SegmentData {
            old: cfg_data(snr_old),
            best: cfg_data(snr_best),
            features: Features {
                snr_diff_db: 0.0, tof_diff_ns: 0.0, noise_diff_db: 0.0,
                pdp_similarity: 1.0, csi_similarity: 1.0, cdr: 1.0, initial_mcs: start_mcs,
            },
            duration_ms: duration,
        };
        let sim = SimConfig::new(ProtocolParams::new(BaOverheadPreset::QuasiOmni3, 2.0));
        let act = [Action3::Na, Action3::Ra, Action3::Ba][action];
        let out = execute(&seg, act, LinkState::at_mcs(start_mcs), &sim);

        let max_bytes = table.max_rate_mbps() * 1e6 * duration / 1000.0 / 8.0;
        prop_assert!(out.bytes <= max_bytes * 1.001, "bytes {} > cap {max_bytes}", out.bytes);
        prop_assert!(out.bytes >= 0.0);
        if let Some(d) = out.recovery_delay_ms {
            prop_assert!((0.0..=duration + 1e-6).contains(&d), "delay {d}");
        }
        let span_bytes: f64 =
            out.spans.iter().map(|s| s.mbps * 1e6 * s.len_ms / 1000.0 / 8.0).sum();
        prop_assert!((span_bytes - out.bytes).abs() < 1.0, "span mismatch");
        prop_assert!(out.end_state.mcs < table.len());
    }

    /// VR playback: stalls are non-negative and a faster link never
    /// stalls more (in total time) than a strictly slower one.
    #[test]
    fn vr_monotone_in_rate(rate in 400.0f64..3000.0) {
        let mut rng = libra_util::rng::rng_from_seed(5);
        let trace = libra::VrTrace::synthetic_8k(5.0, 1.2, &mut rng);
        let fast = [libra::RateSpan { start_ms: 0.0, len_ms: 60_000.0, mbps: rate * 1.5 }];
        let slow = [libra::RateSpan { start_ms: 0.0, len_ms: 60_000.0, mbps: rate }];
        let rf = libra::play(&trace, &fast);
        let rs = libra::play(&trace, &slow);
        prop_assert!(rf.total_stall_ms >= 0.0);
        prop_assert!(rf.total_stall_ms <= rs.total_stall_ms + 1e-6);
    }
}
